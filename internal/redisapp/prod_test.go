package redisapp

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/net"
	"repro/internal/vfs"
)

// TestStoreErrorTable pins the typed error surface: kind strings, the
// Error() rendering, and that the execute paths surface the right kind.
func TestStoreErrorTable(t *testing.T) {
	cases := []struct {
		err      *StoreError
		kind     StoreErrorKind
		contains string
	}{
		{&StoreError{Kind: ErrArenaExhausted, Op: "alloc", Size: 5000, Limit: 4096}, ErrArenaExhausted, "arena exhausted"},
		{&StoreError{Kind: ErrValueTooLarge, Op: "set", Size: 1 << 20, Limit: maxStoreVal}, ErrValueTooLarge, "value too large"},
	}
	for i, c := range cases {
		var se *StoreError
		if !errors.As(error(c.err), &se) || se.Kind != c.kind {
			t.Fatalf("case %d: errors.As failed or kind mismatch", i)
		}
		if msg := c.err.Error(); !bytes.Contains([]byte(msg), []byte(c.contains)) {
			t.Fatalf("case %d: %q does not mention %q", i, msg, c.contains)
		}
	}
}

// TestStoreValueTooLarge drives the cap through every value-bearing
// command.
func TestStoreValueTooLarge(t *testing.T) {
	withStore(t, func(task *kernel.Task, s *Store) error {
		big := make([]byte, maxStoreVal+1)
		checks := []struct {
			op  string
			err error
		}{
			{"set", s.Set(task, []byte("k"), big)},
			{"push", s.Push(task, []byte("l"), big, true)},
		}
		_, saddErr := s.SAdd(task, []byte("s"), big)
		checks = append(checks, struct {
			op  string
			err error
		}{"sadd", saddErr})
		for _, c := range checks {
			var se *StoreError
			if !errors.As(c.err, &se) || se.Kind != ErrValueTooLarge {
				t.Errorf("%s(oversized) = %v, want ErrValueTooLarge", c.op, c.err)
			}
		}
		return nil
	})
}

// TestBenchParamsValidate is the satellite's table test over the ring
// benchmark's parameter surface.
func TestBenchParamsValidate(t *testing.T) {
	good := BenchParams{Command: CmdGet, Requests: 10, PayloadBytes: 64, Keys: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
	cases := []struct {
		name  string
		mut   func(*BenchParams)
		field string
	}{
		{"zero command", func(p *BenchParams) { p.Command = 0 }, "Command"},
		{"bad command", func(p *BenchParams) { p.Command = 99 }, "Command"},
		{"zero requests", func(p *BenchParams) { p.Requests = 0 }, "Requests"},
		{"negative requests", func(p *BenchParams) { p.Requests = -5 }, "Requests"},
		{"zero payload", func(p *BenchParams) { p.PayloadBytes = 0 }, "PayloadBytes"},
		{"oversized payload", func(p *BenchParams) { p.PayloadBytes = maxRRPayload + 1 }, "PayloadBytes"},
		{"zero keys", func(p *BenchParams) { p.Keys = 0 }, "Keys"},
	}
	for _, c := range cases {
		p := good
		c.mut(&p)
		err := p.Validate()
		var pe *ParamError
		if !errors.As(err, &pe) || pe.Field != c.field {
			t.Errorf("%s: Validate() = %v, want ParamError on %s", c.name, err, c.field)
		}
	}
}

// TestTrafficParamsValidate covers the traffic generator's surface,
// including the hoisted requests<servers livelock rejection.
func TestTrafficParamsValidate(t *testing.T) {
	good := quickTraffic()
	if err := good.Validate(2); err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
	cases := []struct {
		name    string
		mut     func(*TrafficParams)
		servers int
		field   string
	}{
		{"no servers", func(p *TrafficParams) {}, 0, "servers"},
		{"zero requests", func(p *TrafficParams) { p.Requests = 0 }, 2, "Requests"},
		{"requests below servers", func(p *TrafficParams) { p.Requests = 1 }, 2, "Requests"},
		{"zero clients", func(p *TrafficParams) { p.Clients = 0 }, 2, "Clients"},
		{"zero payload", func(p *TrafficParams) { p.PayloadBytes = 0 }, 2, "PayloadBytes"},
		{"oversized payload", func(p *TrafficParams) { p.PayloadBytes = maxNetVal + 1 }, 2, "PayloadBytes"},
		{"zero keys", func(p *TrafficParams) { p.Keys = 0 }, 2, "Keys"},
		{"negative gap", func(p *TrafficParams) { p.InterArrival = -1 }, 2, "InterArrival"},
		{"negative setevery", func(p *TrafficParams) { p.SetEvery = -1 }, 2, "SetEvery"},
	}
	for _, c := range cases {
		p := good
		c.mut(&p)
		err := p.Validate(c.servers)
		var pe *ParamError
		if !errors.As(err, &pe) || pe.Field != c.field {
			t.Errorf("%s: Validate(%d) = %v, want ParamError on %s", c.name, c.servers, err, c.field)
		}
	}
}

// diffCommands is the shared command stream for the differential digest
// test: every command type, keys that collide across buckets, values of
// varying sizes.
func diffCommands() []queuedProd {
	var cmds []queuedProd
	for i := 0; i < 40; i++ {
		key := []byte(fmt.Sprintf("key:%03d", i%7))
		val := bytes.Repeat([]byte{byte(i + 1)}, 16+i*3)
		switch i % 8 {
		case 0, 1:
			cmds = append(cmds, queuedProd{cmd: CmdSet, key: key, val: val})
		case 2:
			cmds = append(cmds, queuedProd{cmd: CmdGet, key: key})
		case 3:
			cmds = append(cmds, queuedProd{cmd: CmdLPush, key: key, val: val})
		case 4:
			cmds = append(cmds, queuedProd{cmd: CmdRPush, key: key, val: val})
		case 5:
			cmds = append(cmds, queuedProd{cmd: CmdLPop, key: key})
		case 6:
			cmds = append(cmds, queuedProd{cmd: CmdSAdd, key: key, val: val})
		case 7:
			cmds = append(cmds, queuedProd{cmd: CmdMSet, key: key, val: val})
		}
	}
	return cmds
}

// TestKeyspaceDifferentialDigest runs one command stream through the seed
// single-thread store, the sharded keyspace, and the locked keyspace on
// the same machine, and requires identical layout-independent digests.
// Per-key ordering is preserved by the routing function, exactly as the
// production frontend preserves it.
func TestKeyspaceDifferentialDigest(t *testing.T) {
	m, err := machine.New(machine.Config{
		Model: mem.Shared, OS: machine.StramashOS,
		Cores: 2, Sched: kernel.SchedTimeSlice, SchedQuantum: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	var seedDigest, shardDigest, lockDigest uint64
	_, err = m.RunSingle("diff", mem.NodeX86, func(task *kernel.Task) error {
		cmds := diffCommands()

		arena, err := NewArena(task, 16<<20, "seed.heap")
		if err != nil {
			return err
		}
		seed, err := NewStore(task, arena, 128)
		if err != nil {
			return err
		}
		for _, c := range cmds {
			if _, _, err := netExecute(task, seed, c.cmd, c.key, c.val); err != nil {
				return err
			}
		}
		if seedDigest, err = seed.Digest(task); err != nil {
			return err
		}

		sharded, err := NewStoreSharded(task, workers, 4<<20, 32)
		if err != nil {
			return err
		}
		for _, c := range cmds {
			w := routeKey(task, c.key, workers)
			if _, _, err := sharded.Exec(task, w, c.cmd, c.key, c.val); err != nil {
				return err
			}
		}
		if shardDigest, err = sharded.Digest(task); err != nil {
			return err
		}

		larena, err := NewSharedArena(task, 16<<20, "lock.heap")
		if err != nil {
			return err
		}
		lstore, err := NewStore(task, larena, 64)
		if err != nil {
			return err
		}
		locked, err := NewStoreLocked(task, lstore, 8)
		if err != nil {
			return err
		}
		for _, c := range cmds {
			w := routeKey(task, c.key, workers)
			if _, _, err := locked.Exec(task, w, c.cmd, c.key, c.val); err != nil {
				return err
			}
		}
		lockDigest, err = locked.Digest(task)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if seedDigest == 0 {
		t.Fatal("seed digest is zero — empty store?")
	}
	if shardDigest != seedDigest {
		t.Errorf("sharded digest %x != seed %x", shardDigest, seedDigest)
	}
	if lockDigest != seedDigest {
		t.Errorf("locked digest %x != seed %x", lockDigest, seedDigest)
	}
}

// TestAOFCrashPointReplay truncates the log at every record boundary
// (plus a partial tail past it) and requires the recovered store to match
// a prefix oracle's digest at that point.
func TestAOFCrashPointReplay(t *testing.T) {
	m := newM(t, machine.StramashOS)
	_, err := m.RunSingle("crash", mem.NodeX86, func(task *kernel.Task) error {
		cmds := diffCommands()
		// Record stream and per-prefix oracle digests. Pops only log when
		// they hit, so build the record list by executing against the
		// oracle as we go.
		oarena, err := NewArena(task, 16<<20, "oracle.heap")
		if err != nil {
			return err
		}
		oracle, err := NewStore(task, oarena, 128)
		if err != nil {
			return err
		}
		var records [][]byte
		var digests []uint64 // digests[i] = oracle digest after records[:i]
		d0, err := oracle.Digest(task)
		if err != nil {
			return err
		}
		digests = append(digests, d0)
		for _, c := range cmds {
			_, miss, err := netExecute(task, oracle, c.cmd, c.key, c.val)
			if err != nil {
				return err
			}
			if !mutatesStore(c.cmd, miss) {
				continue
			}
			records = append(records, encodeAOFRecord(c.cmd, c.key, c.val))
			d, err := oracle.Digest(task)
			if err != nil {
				return err
			}
			digests = append(digests, d)
		}
		if len(records) < 10 {
			return fmt.Errorf("only %d mutation records — stream too thin to test", len(records))
		}
		for cut := 0; cut <= len(records); cut++ {
			var blob []byte
			for _, r := range records[:cut] {
				blob = append(blob, r...)
			}
			if cut < len(records) {
				// A crash mid-append leaves part of the next record.
				tail := records[cut]
				blob = append(blob, tail[:len(tail)/2]...)
			}
			path := fmt.Sprintf("/crash%03d.aof", cut)
			fd, err := task.OpenFile(path, vfs.OWrite|vfs.OCreate)
			if err != nil {
				return err
			}
			if len(blob) > 0 {
				if _, err := task.WriteFileAt(fd, blob, 0); err != nil {
					return err
				}
			}
			if err := task.CloseFile(fd); err != nil {
				return err
			}
			rarena, err := NewArena(task, 16<<20, fmt.Sprintf("recover%d", cut))
			if err != nil {
				return err
			}
			rstore, err := NewStore(task, rarena, 64)
			if err != nil {
				return err
			}
			applied, err := RecoverAOF(task, path, rstore)
			if err != nil {
				return err
			}
			if applied != cut {
				return fmt.Errorf("cut %d: replay applied %d records", cut, applied)
			}
			got, err := rstore.Digest(task)
			if err != nil {
				return err
			}
			if got != digests[cut] {
				return fmt.Errorf("cut %d: recovered digest %x != oracle %x", cut, got, digests[cut])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// FuzzAOFRecord round-trips the AOF codec: a decoded record must
// re-encode to the exact consumed bytes, and decode must never panic or
// mis-frame on arbitrary input.
func FuzzAOFRecord(f *testing.F) {
	f.Add(encodeAOFRecord(CmdSet, []byte("key:000001"), bytes.Repeat([]byte{7}, 64)))
	f.Add(encodeAOFRecord(CmdLPop, []byte("l:key"), nil))
	f.Add([]byte{0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		cmd, key, val, rest, ok, err := decodeAOFRecord(data)
		if err != nil || !ok {
			return
		}
		consumed := len(data) - len(rest)
		re := encodeAOFRecord(cmd, key, val)
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:consumed])
		}
		c2, k2, v2, r2, ok2, err2 := decodeAOFRecord(re)
		if err2 != nil || !ok2 || c2 != cmd || !bytes.Equal(k2, key) || !bytes.Equal(v2, val) || len(r2) != 0 {
			t.Fatalf("round trip diverged: ok=%v err=%v", ok2, err2)
		}
	})
}

// newProdCluster builds loadgen + one production server machine.
func newProdCluster(t testing.TB, cores int, regime vfs.Regime, engine machine.EngineKind) *machine.Cluster {
	t.Helper()
	cfgs := []machine.Config{
		{Model: mem.Shared, OS: machine.StramashOS, Engine: engine},
		{Model: mem.Shared, OS: machine.StramashOS, Engine: engine, FileCache: regime,
			Cores: cores, Sched: kernel.SchedTimeSlice, SchedQuantum: 20_000},
	}
	cl, err := machine.NewCluster(cfgs, net.DefaultFabricConfig())
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return cl
}

func prodTraffic() TrafficParams {
	return TrafficParams{
		Requests: 96, Clients: 16, PayloadBytes: 256, Keys: 32,
		ZipfS: 1.0, InterArrival: 1200, SetEvery: 5, Seed: 7,
	}
}

// expectedAOFRecords is populate + one record per SET in the stream.
func expectedAOFRecords(p TrafficParams) int {
	sets := 0
	if p.SetEvery > 0 {
		sets = (p.Requests + p.SetEvery - 1) / p.SetEvery
	}
	return p.Keys + sets
}

// runProd drives one production server end to end.
func runProd(t testing.TB, kind KeyspaceKind, cores int, regime vfs.Regime, engine machine.EngineKind) ProdClusterResult {
	t.Helper()
	cl := newProdCluster(t, cores, regime, engine)
	p := prodTraffic()
	r, err := ClusterProdBench(cl, p, ProdParams{Kind: kind, Cores: cores})
	if err != nil {
		t.Fatalf("ClusterProdBench(%v): %v", kind, err)
	}
	return r
}

// checkProd asserts the invariants every production run must satisfy.
func checkProd(t *testing.T, r ProdClusterResult, kind KeyspaceKind) {
	t.Helper()
	p := prodTraffic()
	if r.Traffic.Done != p.Requests || r.Traffic.Sent != p.Requests {
		t.Fatalf("%v: sent %d done %d, want %d", kind, r.Traffic.Sent, r.Traffic.Done, p.Requests)
	}
	if r.Traffic.Misses != 0 {
		t.Fatalf("%v: %d misses on a pre-populated keyspace", kind, r.Traffic.Misses)
	}
	st := r.PerServer[0]
	if st.Served != p.Requests {
		t.Fatalf("%v: server served %d, want %d", kind, st.Served, p.Requests)
	}
	var workerOps int64
	busyWorkers := 0
	for _, w := range st.PerWorker {
		workerOps += w.Ops
		if w.Ops > 0 {
			busyWorkers++
		}
	}
	if workerOps != int64(p.Requests) {
		t.Fatalf("%v: worker ops sum %d, want %d", kind, workerOps, p.Requests)
	}
	if busyWorkers < 2 {
		t.Fatalf("%v: only %d workers saw traffic — routing degenerate", kind, busyWorkers)
	}
	if st.LiveDigest == 0 || st.LiveDigest != st.ReplayDigest {
		t.Fatalf("%v: replay digest %x != live digest %x", kind, st.ReplayDigest, st.LiveDigest)
	}
	if want := expectedAOFRecords(p); st.AOFRecords != want {
		t.Fatalf("%v: %d AOF records, want %d", kind, st.AOFRecords, want)
	}
	if st.AOFFileBytes == 0 {
		t.Fatalf("%v: AOF file empty", kind)
	}
	var batches int64
	for _, w := range st.PerWorker {
		batches += w.FsyncBatches
	}
	if batches == 0 {
		t.Fatalf("%v: no group-commit batches flushed by workers", kind)
	}
}

// TestServeProdSharded and TestServeProdLocked are the end-to-end runs of
// the two keyspace regimes over the wire.
func TestServeProdSharded(t *testing.T) {
	checkProd(t, runProd(t, KSSharded, 2, vfs.RegimeFused, machine.EngineSeq), KSSharded)
}

func TestServeProdLocked(t *testing.T) {
	r := runProd(t, KSLocked, 2, vfs.RegimeFused, machine.EngineSeq)
	checkProd(t, r, KSLocked)
	var waits int64
	for _, w := range r.PerServer[0].PerWorker {
		waits += w.FutexWaits
	}
	// Contended bucket locks should put at least one worker to sleep; if
	// not, the locked regime degenerated into the sharded one.
	t.Logf("locked regime futex waits: %d", waits)
}

// TestServeProdCrossRegimeDigest pins response-content identity between
// the sharded and locked keyspaces for the same traffic.
func TestServeProdCrossRegimeDigest(t *testing.T) {
	sh := runProd(t, KSSharded, 2, vfs.RegimeFused, machine.EngineSeq)
	lk := runProd(t, KSLocked, 2, vfs.RegimeFused, machine.EngineSeq)
	if sh.Traffic.Digest != lk.Traffic.Digest {
		t.Fatalf("response digests diverge: sharded %x locked %x", sh.Traffic.Digest, lk.Traffic.Digest)
	}
	if sh.PerServer[0].LiveDigest != lk.PerServer[0].LiveDigest {
		t.Fatalf("store digests diverge: sharded %x locked %x",
			sh.PerServer[0].LiveDigest, lk.PerServer[0].LiveDigest)
	}
}

// TestServeProdEngineIdentity pins seq/par determinism for both regimes,
// including worker counters and digests.
func TestServeProdEngineIdentity(t *testing.T) {
	for _, kind := range []KeyspaceKind{KSSharded, KSLocked} {
		seq := runProd(t, kind, 2, vfs.RegimeFused, machine.EngineSeq)
		par := runProd(t, kind, 2, vfs.RegimeFused, machine.EnginePar)
		if seq.Traffic != par.Traffic {
			t.Fatalf("%v: traffic diverged:\nseq %+v\npar %+v", kind, seq.Traffic, par.Traffic)
		}
		if !reflect.DeepEqual(seq.PerServer, par.PerServer) {
			t.Fatalf("%v: server stats diverged:\nseq %+v\npar %+v", kind, seq.PerServer, par.PerServer)
		}
	}
}

// TestServeProdPopcornRegime runs the locked keyspace over the
// DSM-replicated page cache: persistence must still replay correctly and
// the fsync counters must show message-paying flushes.
func TestServeProdPopcornRegime(t *testing.T) {
	r := runProd(t, KSLocked, 1, vfs.RegimePopcorn, machine.EngineSeq)
	checkProd(t, r, KSLocked)
}
