package redisapp

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/net"
	"repro/internal/pgtable"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// This file is the production-shaped server: a frontend task owns the
// machine's network stack and clone()s one worker per core on each node.
// The frontend decodes pipelined RESP-lite requests, routes each by key
// hash to its owning worker over a per-worker request ring in simulated
// memory, reassembles responses into per-connection order, and flushes
// them batched. Workers execute against the chosen keyspace regime
// (sharded or locked), append mutations to a shared AOF through the VFS
// with group-commit fsync, and report per-worker counters. After the run
// the server replays the AOF into a fresh store and digests both — the
// replay-equals-live check is the persistence story's proof obligation.

// Worker ring geometry: slot 0 of each ring holds head (producer index)
// at +0 and tail (consumer index) at +64. Request slots carry
// seq(8)|cmd(1)|klen(4)|vlen(4)|key|val; response slots carry
// seq(8)|status(1)|plen(4)|payload. The seq is frontend-internal — the
// wire protocol stays plain RESP-lite, FIFO per connection.
const (
	prodRingCtl = 128
	prodSlots   = 16
	prodSlotCap = 8768 // fits hdr + maxNetKey + maxNetVal
	prodReqHdr  = 17
	prodRespHdr = 13
)

// KeyspaceKind selects the store regime behind the worker pool.
type KeyspaceKind int

const (
	// KSSharded hash-partitions the keyspace, one private store per
	// worker: no locks, no cross-worker write sharing.
	KSSharded KeyspaceKind = iota
	// KSLocked shares one store between all workers under futex-backed
	// bucket-stripe locks and a shared-offset arena.
	KSLocked
)

func (k KeyspaceKind) String() string {
	if k == KSLocked {
		return "locked"
	}
	return "sharded"
}

// ProdParams configures one production server process.
type ProdParams struct {
	// Port is the listening port (0 = 6379).
	Port uint16
	// Expected is the number of requests to serve before shutting down.
	Expected int
	// PayloadBytes and Keys size the pre-populated keyspace, matching the
	// traffic generator's deterministic key/value functions.
	PayloadBytes int
	Keys         int
	// Kind picks the keyspace regime.
	Kind KeyspaceKind
	// Cores is the per-node core count; the server clones one worker per
	// core per node (2*Cores workers).
	Cores int
	// AOFPath is the append-only log file (empty = "/redis.aof").
	AOFPath string
	// GroupK and GroupQ are the group-commit policy: flush the staged
	// records after GroupK commands or GroupQ cycles, whichever first
	// (0 = defaults 8 and 150000).
	GroupK int
	GroupQ sim.Cycles
}

// ProdWorkerStats is one worker's counters, for the -json export.
type ProdWorkerStats struct {
	Ops          int64
	Misses       int64
	FutexWaits   int64
	FsyncBatches int64
	AOFRecords   int64
	AOFBytes     int64
}

// ProdStats reports one production server run.
type ProdStats struct {
	Served  int
	Misses  int
	Workers int
	// ServeCycles spans the frontend's serve loop (populate, clone and
	// recovery excluded).
	ServeCycles sim.Cycles
	PerWorker   []ProdWorkerStats
	// LiveDigest is the keyspace digest after the run; ReplayDigest is
	// the digest of a fresh store built by replaying the AOF. Equal
	// digests mean the log captured every surviving mutation.
	LiveDigest   uint64
	ReplayDigest uint64
	// AOFRecords counts records applied by the replay; AOFFileBytes is
	// the log's final size.
	AOFRecords   int
	AOFFileBytes int64
}

// queuedProd is one decoded request waiting for ring space.
type queuedProd struct {
	seq  uint64
	cmd  Command
	key  []byte
	val  []byte
	dest int
}

// prodRings lays out the per-worker rings and stop flags in one mapping.
type prodRings struct {
	base    pgtable.VirtAddr
	workers int
}

func (r prodRings) ringBytes() int { return prodRingCtl + prodSlots*prodSlotCap }
func (r prodRings) req(w int) pgtable.VirtAddr {
	return r.base + pgtable.VirtAddr(w*r.ringBytes())
}
func (r prodRings) resp(w int) pgtable.VirtAddr {
	return r.base + pgtable.VirtAddr((r.workers+w)*r.ringBytes())
}
func (r prodRings) stop(w int) pgtable.VirtAddr {
	return r.base + pgtable.VirtAddr(2*r.workers*r.ringBytes()+w*64)
}
func (r prodRings) size() uint64 { return uint64(2*r.workers*r.ringBytes() + r.workers*64) }

// ServeProd runs the production server on task t: listen, build the
// keyspace, log the populate phase to the AOF, clone the workers, serve
// Expected pipelined requests, then join, digest, and verify recovery.
func ServeProd(t *kernel.Task, p ProdParams) (ProdStats, error) {
	var st ProdStats
	if p.Port == 0 {
		p.Port = 6379
	}
	if p.AOFPath == "" {
		p.AOFPath = "/redis.aof"
	}
	if p.GroupK == 0 {
		p.GroupK = 8
	}
	if p.GroupQ == 0 {
		p.GroupQ = 150_000
	}
	if p.Cores < 1 {
		p.Cores = 1
	}
	workers := 2 * p.Cores
	st.Workers = workers
	st.PerWorker = make([]ProdWorkerStats, workers)

	// The frontend is the machine stack's only socket user; workers talk
	// to it through simulated-memory rings only.
	if err := t.ClaimNet(); err != nil {
		return st, err
	}
	defer t.ReleaseNet()
	lfd, err := t.SocketListen(p.Port)
	if err != nil {
		return st, err
	}

	ks, err := buildKeyspace(t, p.Kind, workers)
	if err != nil {
		return st, err
	}
	// Populate through the same Exec + AOF path live mutations use, so
	// the log replays into the complete keyspace, not just the deltas.
	front, err := openAOF(t, p.AOFPath, p.GroupK, p.GroupQ)
	if err != nil {
		return st, err
	}
	bp := BenchParams{PayloadBytes: p.PayloadBytes, Keys: p.Keys}
	for i := 0; i < p.Keys; i++ {
		key, val := keyFor(bp, i), valFor(bp, i)
		w := routeKey(t, key, workers)
		if _, _, err := ks.Exec(t, w, CmdSet, key, val); err != nil {
			return st, err
		}
		if err := front.Append(t, CmdSet, key, val); err != nil {
			return st, err
		}
	}
	if err := front.Close(t); err != nil {
		return st, err
	}

	rings := prodRings{workers: workers}
	rings.base, err = t.Proc.MmapAligned(rings.size(), 2<<20, kernel.VMARead|kernel.VMAWrite, "redis.rings")
	if err != nil {
		return st, err
	}
	for w := 0; w < workers; w++ {
		for _, a := range []pgtable.VirtAddr{rings.req(w), rings.req(w) + 64, rings.resp(w), rings.resp(w) + 64, rings.stop(w)} {
			if err := t.Store(a, 8, 0); err != nil {
				return st, err
			}
		}
	}

	kids := make([]*kernel.ClonedTask, workers)
	for w := 0; w < workers; w++ {
		w := w
		c, err := t.Clone(fmt.Sprintf("redis-worker%d", w), (w/2)%p.Cores, func(wt *kernel.Task) error {
			return prodWorker(wt, p, ks, w, rings, &st.PerWorker[w])
		})
		if err != nil {
			return st, err
		}
		kids[w] = c
	}

	serveErr := prodFrontend(t, p, rings, workers, lfd, &st)

	// Shut the workers down whether or not the serve loop succeeded, so a
	// serve error surfaces instead of a join deadlock.
	for w := 0; w < workers; w++ {
		t.Th.YieldPoint()
		t.Th.BeginSerial()
		err := t.Store(rings.stop(w), 8, 1)
		t.Th.EndSerial()
		t.Th.YieldPoint()
		if err != nil {
			return st, err
		}
	}
	for _, c := range kids {
		if err := c.Join(t); err != nil && serveErr == nil {
			serveErr = err
		}
	}
	if serveErr != nil {
		return st, serveErr
	}

	st.LiveDigest, err = ks.Digest(t)
	if err != nil {
		return st, err
	}

	// Recovery: replay the AOF into a fresh store and digest it. The
	// digests are layout-independent, so replay-equals-live holds across
	// regimes and bucket counts.
	rarena, err := NewArena(t, 16<<20, "redis.recover")
	if err != nil {
		return st, err
	}
	rstore, err := NewStore(t, rarena, 256)
	if err != nil {
		return st, err
	}
	st.AOFRecords, err = RecoverAOF(t, p.AOFPath, rstore)
	if err != nil {
		return st, err
	}
	st.ReplayDigest, err = rstore.Digest(t)
	if err != nil {
		return st, err
	}
	rfd, err := t.OpenFile(p.AOFPath, vfs.ORead)
	if err != nil {
		return st, err
	}
	if st.AOFFileBytes, err = t.FileSize(rfd); err != nil {
		return st, err
	}
	if err := t.CloseFile(rfd); err != nil {
		return st, err
	}
	return st, t.CloseSock(lfd)
}

// prodPrefault is the per-worker arena warmup: the server pre-touches the
// heap it expects to use before serving, so demand-zero faults are paid at
// boot, not inside request latencies. The same byte budget is warmed in
// both regimes — workers shards of it in the sharded keyspace, one run of
// it in the locked keyspace's shared arena.
const prodPrefault = 256 << 10

// buildKeyspace constructs the regime's store(s) and warms their arenas.
func buildKeyspace(t *kernel.Task, kind KeyspaceKind, workers int) (Keyspace, error) {
	if kind == KSLocked {
		arena, err := NewSharedArena(t, 48<<20, "redis.heap")
		if err != nil {
			return nil, err
		}
		if err := arena.Prefault(t, uint64(workers)*prodPrefault); err != nil {
			return nil, err
		}
		store, err := NewStore(t, arena, 256)
		if err != nil {
			return nil, err
		}
		return NewStoreLocked(t, store, 8)
	}
	ks, err := NewStoreSharded(t, workers, 8<<20, 64)
	if err != nil {
		return nil, err
	}
	for _, s := range ks.shards {
		if err := s.arena.Prefault(t, prodPrefault); err != nil {
			return nil, err
		}
	}
	return ks, nil
}

// prodFrontend is the timed serve loop: accept, decode pipelined
// requests, route to worker rings, reassemble responses per connection in
// request order, and flush them batched.
func prodFrontend(t *kernel.Task, p ProdParams, rings prodRings, workers int, lfd int, st *ProdStats) error {
	t.BeginTimed()
	defer func() { st.ServeCycles = t.TimedCycles() }()

	var conns []int
	rbufs := make(map[int][]byte)
	backlog := make(map[int][]queuedProd)
	pendSeq := make(map[int][]uint64) // per-conn seqs in request order
	respBySeq := make(map[uint64][]byte)
	var nextSeq uint64

	for st.Served < p.Expected {
		progress := false
		fd, err := t.TrySocketAccept(lfd)
		if err != nil {
			return err
		}
		if fd >= 0 {
			conns = append(conns, fd)
			progress = true
		}
		// Receive pump: decode every complete request per connection and
		// stage it (ring space permitting comes later).
		for ci := 0; ci < len(conns); ci++ {
			fd := conns[ci]
			data, err := t.TryRecvSock(fd, 4096)
			if err == io.EOF {
				if n := len(backlog[fd]) + len(pendSeq[fd]); n > 0 {
					return fmt.Errorf("redisapp: client closed with %d requests in flight", n)
				}
				if err := t.CloseSock(fd); err != nil {
					return err
				}
				conns = append(conns[:ci], conns[ci+1:]...)
				delete(rbufs, fd)
				ci--
				progress = true
				continue
			}
			if err != nil {
				return err
			}
			if len(data) == 0 {
				continue
			}
			progress = true
			buf := append(rbufs[fd], data...)
			for {
				cmd, key, val, rest, ok, derr := decodeRequest(buf)
				if derr != nil {
					return derr
				}
				if !ok {
					break
				}
				buf = rest
				// Protocol parsing cost, as in the single-task server.
				t.Compute(int64(20 + (len(key)+len(val))/8))
				q := queuedProd{
					seq: nextSeq, cmd: cmd,
					key: append([]byte(nil), key...), val: append([]byte(nil), val...),
					dest: routeKey(t, key, workers),
				}
				nextSeq++
				backlog[fd] = append(backlog[fd], q)
				pendSeq[fd] = append(pendSeq[fd], q.seq)
			}
			rbufs[fd] = buf
		}
		// Route pump: push each connection's backlog head-of-line into its
		// worker's ring; a full ring stalls only that connection.
		for _, fd := range conns {
			for len(backlog[fd]) > 0 {
				q := backlog[fd][0]
				ok, err := prodRingPush(t, rings.req(q.dest), q)
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				backlog[fd] = backlog[fd][1:]
				progress = true
			}
		}
		// Response pump: drain every worker's response ring.
		for w := 0; w < workers; w++ {
			for {
				seq, status, payload, ok, err := prodRingPop(t, rings.resp(w))
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				if status == 0 {
					st.Misses++
				}
				respBySeq[seq] = encodeResponse(status, payload)
				progress = true
			}
		}
		// Flush pump: emit each connection's ready responses in request
		// order, one socket write per connection per pass.
		for _, fd := range conns {
			var out []byte
			for len(pendSeq[fd]) > 0 {
				r, ok := respBySeq[pendSeq[fd][0]]
				if !ok {
					break
				}
				out = append(out, r...)
				delete(respBySeq, pendSeq[fd][0])
				pendSeq[fd] = pendSeq[fd][1:]
				st.Served++
			}
			if len(out) > 0 {
				if _, err := t.SendSock(fd, out); err != nil {
					return err
				}
				progress = true
			}
		}
		if !progress {
			t.Th.Advance(400) // poll interval
			t.Th.YieldPoint()
		}
	}
	for _, fd := range conns {
		if err := t.CloseSock(fd); err != nil {
			return err
		}
	}
	return nil
}

// prodRingPush enqueues one request if the ring has space. Ring control
// words synchronize tasks through plain simulated memory, so every
// operation is bracketed by yield points: the sequential engine orders
// cross-thread visibility at segment granularity, and a ring store buried
// mid-segment between parking syscalls would be seen at different times
// by the two engine drivers.
func prodRingPush(t *kernel.Task, ring pgtable.VirtAddr, q queuedProd) (ok bool, err error) {
	t.Th.YieldPoint()
	t.Th.BeginSerial()
	defer func() {
		t.Th.EndSerial()
		t.Th.YieldPoint()
	}()
	head, err := t.Load(ring, 8)
	if err != nil {
		return false, err
	}
	tail, err := t.Load(ring+64, 8)
	if err != nil {
		return false, err
	}
	if head-tail >= prodSlots {
		return false, nil
	}
	buf := make([]byte, prodReqHdr+len(q.key)+len(q.val))
	binary.LittleEndian.PutUint64(buf[0:8], q.seq)
	buf[8] = byte(q.cmd)
	binary.LittleEndian.PutUint32(buf[9:13], uint32(len(q.key)))
	binary.LittleEndian.PutUint32(buf[13:17], uint32(len(q.val)))
	copy(buf[prodReqHdr:], q.key)
	copy(buf[prodReqHdr+len(q.key):], q.val)
	slot := ring + prodRingCtl + pgtable.VirtAddr(int(head%prodSlots)*prodSlotCap)
	if err := t.WriteBytes(slot, buf); err != nil {
		return false, err
	}
	if err := t.Store(ring, 8, head+1); err != nil {
		return false, err
	}
	return true, nil
}

// prodRingPop dequeues one response if available (yield discipline as in
// prodRingPush).
func prodRingPop(t *kernel.Task, ring pgtable.VirtAddr) (seq uint64, status byte, payload []byte, ok bool, err error) {
	t.Th.YieldPoint()
	t.Th.BeginSerial()
	defer func() {
		t.Th.EndSerial()
		t.Th.YieldPoint()
	}()
	head, err := t.Load(ring, 8)
	if err != nil {
		return 0, 0, nil, false, err
	}
	tail, err := t.Load(ring+64, 8)
	if err != nil {
		return 0, 0, nil, false, err
	}
	if head == tail {
		return 0, 0, nil, false, nil
	}
	slot := ring + prodRingCtl + pgtable.VirtAddr(int(tail%prodSlots)*prodSlotCap)
	hdr, err := t.ReadBytes(slot, prodRespHdr)
	if err != nil {
		return 0, 0, nil, false, err
	}
	seq = binary.LittleEndian.Uint64(hdr[0:8])
	status = hdr[8]
	plen := int(binary.LittleEndian.Uint32(hdr[9:13]))
	if plen < 0 || prodRespHdr+plen > prodSlotCap {
		return 0, 0, nil, false, fmt.Errorf("redisapp: corrupt response slot (plen=%d)", plen)
	}
	if plen > 0 {
		payload, err = t.ReadBytes(slot+prodRespHdr, plen)
		if err != nil {
			return 0, 0, nil, false, err
		}
	}
	if err := t.Store(ring+64, 8, tail+1); err != nil {
		return 0, 0, nil, false, err
	}
	return seq, status, payload, true, nil
}

// prodRingConsume dequeues the request at tail (yield/serial discipline as
// in prodRingPush: the slot reads and the tail publication are one
// ordering unit under both engine drivers).
func prodRingConsume(t *kernel.Task, reqRing pgtable.VirtAddr, tail uint64) (seq uint64, cmd Command, key, val []byte, err error) {
	t.Th.YieldPoint()
	t.Th.BeginSerial()
	defer func() {
		t.Th.EndSerial()
		t.Th.YieldPoint()
	}()
	slot := reqRing + prodRingCtl + pgtable.VirtAddr(int(tail%prodSlots)*prodSlotCap)
	hdr, err := t.ReadBytes(slot, prodReqHdr)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	seq = binary.LittleEndian.Uint64(hdr[0:8])
	cmd = Command(hdr[8])
	klen := int(binary.LittleEndian.Uint32(hdr[9:13]))
	vlen := int(binary.LittleEndian.Uint32(hdr[13:17]))
	if klen <= 0 || klen > maxNetKey || vlen < 0 || vlen > maxNetVal {
		return 0, 0, nil, nil, fmt.Errorf("redisapp: corrupt ring slot (klen=%d vlen=%d)", klen, vlen)
	}
	key, err = t.ReadBytes(slot+prodReqHdr, klen)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	if vlen > 0 {
		val, err = t.ReadBytes(slot+prodReqHdr+pgtable.VirtAddr(klen), vlen)
		if err != nil {
			return 0, 0, nil, nil, err
		}
	}
	if err := t.Store(reqRing+64, 8, tail+1); err != nil {
		return 0, 0, nil, nil, err
	}
	return seq, cmd, key, val, nil
}

// prodRingPeek reads a ring's control words plus the stop flag as one
// ordering unit. The worker wait loops spin on this: the loads are
// cross-task shared state, so even a read-only probe must take the serial
// token — a probe running ahead of a lower-clocked producer's pending
// publication would observe the ring at a simulated time the sequential
// driver never produces.
func prodRingPeek(t *kernel.Task, ring, stopAddr pgtable.VirtAddr) (head, tail, stop uint64, err error) {
	t.Th.YieldPoint()
	t.Th.BeginSerial()
	defer func() {
		t.Th.EndSerial()
		t.Th.YieldPoint()
	}()
	if head, err = t.Load(ring, 8); err != nil {
		return
	}
	if tail, err = t.Load(ring+64, 8); err != nil {
		return
	}
	stop, err = t.Load(stopAddr, 8)
	return
}

// prodRingRespond enqueues one response (yield/serial discipline as in
// prodRingPush). The caller has already established that the ring has
// space; the worker is the ring's only producer, so the space cannot
// vanish between the check and this section.
func prodRingRespond(t *kernel.Task, respRing pgtable.VirtAddr, seq uint64, status byte, payload []byte) error {
	t.Th.YieldPoint()
	t.Th.BeginSerial()
	defer func() {
		t.Th.EndSerial()
		t.Th.YieldPoint()
	}()
	rh, err := t.Load(respRing, 8)
	if err != nil {
		return err
	}
	rbuf := make([]byte, prodRespHdr+len(payload))
	binary.LittleEndian.PutUint64(rbuf[0:8], seq)
	rbuf[8] = status
	binary.LittleEndian.PutUint32(rbuf[9:13], uint32(len(payload)))
	copy(rbuf[prodRespHdr:], payload)
	rslot := respRing + prodRingCtl + pgtable.VirtAddr(int(rh%prodSlots)*prodSlotCap)
	if err := t.WriteBytes(rslot, rbuf); err != nil {
		return err
	}
	return t.Store(respRing, 8, rh+1)
}

// prodWorker is one cloned worker: poll the request ring, execute against
// the keyspace, log mutations with group commit, and push the response.
func prodWorker(t *kernel.Task, p ProdParams, ks Keyspace, w int, rings prodRings, out *ProdWorkerStats) error {
	// Odd workers serve from the other ISA; cores interleave so each
	// node's cores 0..Cores-1 all carry one worker.
	if w%2 == 1 {
		if err := t.Migrate(mem.NodeArm); err != nil {
			return err
		}
	}
	log, err := openAOF(t, p.AOFPath, p.GroupK, p.GroupQ)
	if err != nil {
		return err
	}
	reqRing, respRing := rings.req(w), rings.resp(w)
	for {
		head, tail, stop, err := prodRingPeek(t, reqRing, rings.stop(w))
		if err != nil {
			return err
		}
		if head == tail {
			if stop != 0 {
				break
			}
			t.Th.Advance(300) // worker poll interval
			t.Th.YieldPoint()
			continue
		}
		seq, cmd, key, val, err := prodRingConsume(t, reqRing, tail)
		if err != nil {
			return err
		}
		payload, miss, err := ks.Exec(t, w, cmd, key, val)
		if err != nil {
			return err
		}
		if mutatesStore(cmd, miss) {
			if err := log.Append(t, cmd, key, val); err != nil {
				return err
			}
		}
		// Push the response, waiting (in simulated time) for ring space;
		// the frontend always drains, so this cannot deadlock — unless the
		// frontend died mid-run, which the stop flag breaks us out of.
		for {
			rh, rt, stop, err := prodRingPeek(t, respRing, rings.stop(w))
			if err != nil {
				return err
			}
			if rh-rt < prodSlots {
				break
			}
			if stop != 0 {
				return log.Close(t)
			}
			t.Th.Advance(200)
			t.Th.YieldPoint()
		}
		status := byte(1)
		if miss > 0 {
			status = 0
		}
		if err := prodRingRespond(t, respRing, seq, status, payload); err != nil {
			return err
		}
		out.Ops++
		out.Misses += int64(miss)
	}
	if err := log.Close(t); err != nil {
		return err
	}
	out.FsyncBatches = log.Batches
	out.AOFRecords = log.Records
	out.AOFBytes = log.Bytes
	out.FutexWaits = t.Stats.FutexWaits
	return nil
}

// ProdClusterResult is one production cluster run: machine 0 generated
// the traffic, machines 1..Servers ran ServeProd.
type ProdClusterResult struct {
	Servers   int
	Traffic   TrafficResult
	PerServer []ProdStats
}

// ClusterProdBench drives one GenerateTraffic load balancer into ServeProd
// servers on the remaining machines, mirroring ClusterBench.
func ClusterProdBench(cl *machine.Cluster, p TrafficParams, pp ProdParams) (ProdClusterResult, error) {
	nS := len(cl.Machines) - 1
	if err := p.Validate(nS); err != nil {
		return ProdClusterResult{}, err
	}
	if p.Port == 0 {
		p.Port = 6379
	}
	expected := make([]int, nS)
	for i := 0; i < p.Requests; i++ {
		expected[i%nS]++
	}
	res := ProdClusterResult{Servers: nS, PerServer: make([]ProdStats, nS)}
	specs := make([]machine.ClusterTask, 0, nS+1)
	for s := 0; s < nS; s++ {
		s := s
		specs = append(specs, machine.ClusterTask{Mach: s + 1, TaskSpec: machine.TaskSpec{
			Name: fmt.Sprintf("redis-prod-%d", s), Origin: mem.NodeX86, KeepAlive: true,
			Body: func(t *kernel.Task) error {
				st, err := ServeProd(t, ProdParams{
					Port: p.Port, Expected: expected[s],
					PayloadBytes: p.PayloadBytes, Keys: p.Keys,
					Kind: pp.Kind, Cores: pp.Cores,
					AOFPath: pp.AOFPath, GroupK: pp.GroupK, GroupQ: pp.GroupQ,
				})
				res.PerServer[s] = st
				return err
			},
		}})
	}
	servers := make([]net.Addr, nS)
	for s := range servers {
		servers[s] = net.Addr{Mach: s + 1, Port: p.Port}
	}
	specs = append(specs, machine.ClusterTask{Mach: 0, TaskSpec: machine.TaskSpec{
		Name: "loadgen", Origin: mem.NodeX86, KeepAlive: true, Start: 2000,
		Body: func(t *kernel.Task) error {
			tr, err := GenerateTraffic(t, servers, p)
			res.Traffic = tr
			return err
		},
	}})
	if _, err := cl.RunTasks(specs...); err != nil {
		return res, err
	}
	return res, nil
}
