package redisapp

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/mem"
)

func newM(t *testing.T, os machine.OSKind) *machine.Machine {
	t.Helper()
	m, err := machine.New(machine.Config{Model: mem.Shared, OS: os})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// withStore runs body with a fresh store on a vanilla machine.
func withStore(t *testing.T, body func(task *kernel.Task, s *Store) error) {
	t.Helper()
	m := newM(t, machine.VanillaOS)
	_, err := m.RunSingle("store", mem.NodeX86, func(task *kernel.Task) error {
		arena, err := NewArena(task, 16<<20, "heap")
		if err != nil {
			return err
		}
		s, err := NewStore(task, arena, 64)
		if err != nil {
			return err
		}
		return body(task, s)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetGet(t *testing.T) {
	withStore(t, func(task *kernel.Task, s *Store) error {
		if err := s.Set(task, []byte("alpha"), []byte("one")); err != nil {
			return err
		}
		if err := s.Set(task, []byte("beta"), []byte("two")); err != nil {
			return err
		}
		got, err := s.Get(task, []byte("alpha"))
		if err != nil {
			return err
		}
		if string(got) != "one" {
			t.Errorf("Get(alpha) = %q", got)
		}
		// Overwrite.
		if err := s.Set(task, []byte("alpha"), []byte("uno")); err != nil {
			return err
		}
		got, _ = s.Get(task, []byte("alpha"))
		if string(got) != "uno" {
			t.Errorf("after overwrite Get(alpha) = %q", got)
		}
		// Missing key.
		got, err = s.Get(task, []byte("gamma"))
		if err != nil || got != nil {
			t.Errorf("Get(missing) = %q, %v", got, err)
		}
		return nil
	})
}

func TestSetGetLargeValuesAndCollisions(t *testing.T) {
	withStore(t, func(task *kernel.Task, s *Store) error {
		// More keys than buckets forces chain walks.
		const n = 200
		for i := 0; i < n; i++ {
			key := []byte{byte('a' + i%26), byte('0' + i/26)}
			val := bytes.Repeat([]byte{byte(i)}, 100+i)
			if err := s.Set(task, key, val); err != nil {
				return err
			}
		}
		for i := 0; i < n; i++ {
			key := []byte{byte('a' + i%26), byte('0' + i/26)}
			got, err := s.Get(task, key)
			if err != nil {
				return err
			}
			want := bytes.Repeat([]byte{byte(i)}, 100+i)
			if !bytes.Equal(got, want) {
				t.Errorf("key %q: got %d bytes, first=%v", key, len(got), got[:1])
				return nil
			}
		}
		return nil
	})
}

func TestListPushPop(t *testing.T) {
	withStore(t, func(task *kernel.Task, s *Store) error {
		key := []byte("mylist")
		// RPUSH a,b,c; LPUSH z -> z,a,b,c
		for _, v := range []string{"a", "b", "c"} {
			if err := s.Push(task, key, []byte(v), false); err != nil {
				return err
			}
		}
		if err := s.Push(task, key, []byte("z"), true); err != nil {
			return err
		}
		if n, _ := s.LLen(task, key); n != 4 {
			t.Errorf("LLen = %d, want 4", n)
		}
		if v, _ := s.Pop(task, key, true); string(v) != "z" {
			t.Errorf("LPop = %q, want z", v)
		}
		if v, _ := s.Pop(task, key, false); string(v) != "c" {
			t.Errorf("RPop = %q, want c", v)
		}
		if v, _ := s.Pop(task, key, true); string(v) != "a" {
			t.Errorf("LPop = %q, want a", v)
		}
		if v, _ := s.Pop(task, key, true); string(v) != "b" {
			t.Errorf("LPop = %q, want b", v)
		}
		if v, _ := s.Pop(task, key, true); v != nil {
			t.Errorf("Pop on empty list = %q", v)
		}
		if n, _ := s.LLen(task, key); n != 0 {
			t.Errorf("LLen after drain = %d", n)
		}
		return nil
	})
}

func TestSAdd(t *testing.T) {
	withStore(t, func(task *kernel.Task, s *Store) error {
		key := []byte("myset")
		if n, err := s.SAdd(task, key, []byte("m1")); err != nil || n != 1 {
			t.Errorf("SAdd new = %d, %v", n, err)
		}
		if n, err := s.SAdd(task, key, []byte("m1")); err != nil || n != 0 {
			t.Errorf("SAdd dup = %d, %v", n, err)
		}
		if n, err := s.SAdd(task, key, []byte("m2")); err != nil || n != 1 {
			t.Errorf("SAdd second = %d, %v", n, err)
		}
		return nil
	})
}

func TestArenaExhaustion(t *testing.T) {
	m := newM(t, machine.VanillaOS)
	_, err := m.RunSingle("arena", mem.NodeX86, func(task *kernel.Task) error {
		arena, err := NewArena(task, 4096, "tiny")
		if err != nil {
			return err
		}
		if _, err := arena.Alloc(task, 4000); err != nil {
			return err
		}
		_, err = arena.Alloc(task, 200)
		if err == nil {
			t.Error("over-allocation accepted")
		}
		var se *StoreError
		if !errors.As(err, &se) || se.Kind != ErrArenaExhausted {
			t.Errorf("over-allocation error = %v, want *StoreError{ErrArenaExhausted}", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseCommand(t *testing.T) {
	for _, n := range CommandNames {
		c, err := ParseCommand(n)
		if err != nil {
			t.Fatal(err)
		}
		if c.String() != n {
			t.Errorf("round trip %q -> %v", n, c)
		}
	}
	if _, err := ParseCommand("flushall"); err == nil {
		t.Error("unknown command accepted")
	}
}

func TestBenchRunGetStramash(t *testing.T) {
	m := newM(t, machine.StramashOS)
	res, err := Run(m, BenchParams{Command: CmdGet, Requests: 40, PayloadBytes: 256, Keys: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("%d GET misses", res.Errors)
	}
	if res.CyclesPerRequest <= 0 {
		t.Error("no per-request cost measured")
	}
}

func TestBenchAllCommandsStramash(t *testing.T) {
	for _, name := range CommandNames {
		name := name
		t.Run(name, func(t *testing.T) {
			cmd, _ := ParseCommand(name)
			m := newM(t, machine.StramashOS)
			res, err := Run(m, BenchParams{Command: cmd, Requests: 24, PayloadBytes: 256, Keys: 8})
			if err != nil {
				t.Fatal(err)
			}
			if res.Errors != 0 {
				t.Errorf("%d errors", res.Errors)
			}
		})
	}
}

func TestBenchSpeedupShape(t *testing.T) {
	// Figure 14's shape: Stramash > Popcorn-SHM > Popcorn-TCP throughput.
	per := func(os machine.OSKind) float64 {
		m := newM(t, os)
		res, err := Run(m, BenchParams{Command: CmdGet, Requests: 30, PayloadBytes: 256, Keys: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res.CyclesPerRequest
	}
	tcp := per(machine.PopcornTCP)
	shm := per(machine.PopcornSHM)
	str := per(machine.StramashOS)
	if !(str < shm && shm < tcp) {
		t.Errorf("per-request cycles: stramash=%.0f shm=%.0f tcp=%.0f, want strictly increasing", str, shm, tcp)
	}
}
