package redisapp

import (
	"encoding/binary"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/pgtable"
	"repro/internal/sim"
)

// Command codes of the RESP-lite wire protocol. One request is:
//
//	cmd(1) | keyLen(4) | valLen(4) | key... | val...
//
// and one response is: status(1) | len(4) | payload...
type Command byte

// The eight commands of Figure 14.
const (
	CmdGet Command = iota + 1
	CmdSet
	CmdLPush
	CmdRPush
	CmdLPop
	CmdRPop
	CmdSAdd
	CmdMSet
)

// CommandNames lists the benchmark commands in the paper's order.
var CommandNames = []string{"get", "set", "lpush", "rpush", "lpop", "rpop", "sadd", "mset"}

// ParseCommand maps a name to its code.
func ParseCommand(name string) (Command, error) {
	for i, n := range CommandNames {
		if n == name {
			return Command(i + 1), nil
		}
	}
	return 0, fmt.Errorf("redisapp: unknown command %q", name)
}

func (c Command) String() string {
	if int(c) >= 1 && int(c) <= len(CommandNames) {
		return CommandNames[c-1]
	}
	return fmt.Sprintf("cmd(%d)", byte(c))
}

// ring geometry: slot 0 holds head (producer index) at +0 and tail
// (consumer index) at +64; request slots follow.
const (
	ringCtl      = 128
	slotSize     = 1536
	ringSlots    = 32
	reqHdr       = 9
	maxRRPayload = slotSize - reqHdr - 64
)

// BenchParams configures a Figure 14 run.
type BenchParams struct {
	Command  Command
	Requests int
	// PayloadBytes is the value size (the paper uses 1024).
	PayloadBytes int
	// Keys is the keyspace size requests cycle through.
	Keys int
}

// DefaultBenchParams returns a scaled §9.2.8 configuration.
func DefaultBenchParams(cmd Command) BenchParams {
	return BenchParams{Command: cmd, Requests: 300, PayloadBytes: 1024, Keys: 64}
}

// Validate rejects shapes the benchmark cannot run: unknown commands,
// zero/negative counts, and payloads that overflow a ring slot. Run calls
// it after applying defaults, so a zero-valued BenchParams{Command: c}
// stays the "use defaults" idiom.
func (p BenchParams) Validate() error {
	if p.Command < CmdGet || p.Command > CmdMSet {
		return &ParamError{Field: "Command", Value: int(p.Command), Reason: "unknown command code"}
	}
	if p.Requests <= 0 {
		return &ParamError{Field: "Requests", Value: p.Requests, Reason: "must be positive"}
	}
	if p.PayloadBytes <= 0 {
		return &ParamError{Field: "PayloadBytes", Value: p.PayloadBytes, Reason: "must be positive"}
	}
	if p.PayloadBytes > maxRRPayload {
		return &ParamError{Field: "PayloadBytes", Value: p.PayloadBytes,
			Reason: fmt.Sprintf("exceeds slot capacity %d", maxRRPayload)}
	}
	if p.Keys <= 0 {
		return &ParamError{Field: "Keys", Value: p.Keys, Reason: "must be positive"}
	}
	return nil
}

// BenchResult is one Figure 14 measurement.
type BenchResult struct {
	Command          Command
	Requests         int
	ServerCycles     sim.Cycles
	CyclesPerRequest float64
	Errors           int
}

// keyFor builds the deterministic key for request i.
func keyFor(p BenchParams, i int) []byte {
	return []byte(fmt.Sprintf("key:%06d", i%p.Keys))
}

// valFor builds the deterministic payload for request i.
func valFor(p BenchParams, i int) []byte {
	v := make([]byte, p.PayloadBytes)
	for j := range v {
		v[j] = byte((i*131 + j*31) % 251)
	}
	return v
}

// Run executes the benchmark on machine m: the server populates its store
// at the origin, migrates to the other ISA (its time_event handler runs
// there, §9.2.8), and then serves p.Requests requests that a NIC-side
// task deposits into origin-memory RX buffers.
func Run(m *machine.Machine, p BenchParams) (BenchResult, error) {
	if p.Requests == 0 {
		p = DefaultBenchParams(p.Command)
	}
	if err := p.Validate(); err != nil {
		return BenchResult{}, err
	}
	res := BenchResult{Command: p.Command, Requests: p.Requests}

	var ringBase pgtable.VirtAddr
	ready := false

	serverBody := func(t *kernel.Task) error {
		// The RX ring lives in origin memory (the NIC DMAs into it).
		rb, err := t.Proc.MmapAligned(ringCtl+ringSlots*slotSize, 2<<20, kernel.VMARead|kernel.VMAWrite, "redis.rx")
		if err != nil {
			return err
		}
		if err := t.Store(rb, 8, 0); err != nil { // head
			return err
		}
		if err := t.Store(rb+64, 8, 0); err != nil { // tail
			return err
		}
		arena, err := NewArena(t, 48<<20, "redis.heap")
		if err != nil {
			return err
		}
		store, err := NewStore(t, arena, 256)
		if err != nil {
			return err
		}
		// Pre-populate so GET/LPOP/RPOP have data (the redis-benchmark
		// setup phase).
		for i := 0; i < p.Keys; i++ {
			key := keyFor(p, i)
			if err := store.Set(t, key, valFor(p, i)); err != nil {
				return err
			}
			if p.Command == CmdLPop || p.Command == CmdRPop {
				lkey := append([]byte("l:"), key...)
				need := (p.Requests + p.Keys - 1) / p.Keys
				for j := 0; j < need+1; j++ {
					if err := store.Push(t, lkey, valFor(p, i), false); err != nil {
						return err
					}
				}
			}
		}
		ringBase = rb
		ready = true

		// time_event: migrate to the remote ISA and serve from there.
		if err := t.Migrate(mem.NodeArm); err != nil {
			return err
		}
		t.BeginTimed()
		served := 0
		for served < p.Requests {
			head, err := t.Load(rb, 8)
			if err != nil {
				return err
			}
			tail, err := t.Load(rb+64, 8)
			if err != nil {
				return err
			}
			if head == tail {
				t.Th.Advance(400) // poll interval
				t.Th.YieldPoint()
				continue
			}
			slot := rb + ringCtl + pgtable.VirtAddr(int(tail%ringSlots)*slotSize)
			hdr, err := t.ReadBytes(slot, reqHdr)
			if err != nil {
				return err
			}
			cmd := Command(hdr[0])
			klen := int(binary.LittleEndian.Uint32(hdr[1:5]))
			vlen := int(binary.LittleEndian.Uint32(hdr[5:9]))
			// A corrupt header must not drive ReadBytes past the slot: the
			// lengths are attacker-controlled wire input in a real server.
			if klen <= 0 || vlen < 0 || klen+vlen > slotSize-reqHdr {
				return fmt.Errorf("redisapp: corrupt request header (klen=%d vlen=%d, slot payload max %d)",
					klen, vlen, slotSize-reqHdr)
			}
			key, err := t.ReadBytes(slot+reqHdr, klen)
			if err != nil {
				return err
			}
			var val []byte
			if vlen > 0 {
				val, err = t.ReadBytes(slot+reqHdr+pgtable.VirtAddr(klen), vlen)
				if err != nil {
					return err
				}
			}
			// Protocol parsing cost (RESP decode is byte-at-a-time work).
			t.Compute(int64(20 + (klen+vlen)/8))

			if err := execute(t, store, cmd, key, val, &res); err != nil {
				return err
			}
			if err := t.Store(rb+64, 8, tail+1); err != nil {
				return err
			}
			served++
		}
		res.ServerCycles = t.TimedCycles()
		res.CyclesPerRequest = float64(res.ServerCycles) / float64(p.Requests)
		return nil
	}

	nicBody := func(t *kernel.Task) error {
		for !ready {
			t.Th.Advance(2000)
		}
		rb := ringBase
		for i := 0; i < p.Requests; i++ {
			// Flow control: wait for a free slot.
			for {
				head, err := t.Load(rb, 8)
				if err != nil {
					return err
				}
				tail, err := t.Load(rb+64, 8)
				if err != nil {
					return err
				}
				if head-tail < ringSlots {
					break
				}
				t.Th.Advance(600)
				t.Th.YieldPoint()
			}
			head, err := t.Load(rb, 8)
			if err != nil {
				return err
			}
			key := keyFor(p, i)
			var val []byte
			switch p.Command {
			case CmdGet, CmdLPop, CmdRPop:
			default:
				val = valFor(p, i)
			}
			slot := rb + ringCtl + pgtable.VirtAddr(int(head%ringSlots)*slotSize)
			hdr := make([]byte, reqHdr)
			hdr[0] = byte(p.Command)
			binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(key)))
			binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(val)))
			if err := t.WriteBytes(slot, hdr); err != nil {
				return err
			}
			if err := t.WriteBytes(slot+reqHdr, key); err != nil {
				return err
			}
			if len(val) > 0 {
				if err := t.WriteBytes(slot+reqHdr+pgtable.VirtAddr(len(key)), val); err != nil {
					return err
				}
			}
			if err := t.Store(rb, 8, head+1); err != nil {
				return err
			}
		}
		return nil
	}

	results, err := m.RunTasks(
		machine.TaskSpec{Name: "redis-server", Origin: mem.NodeX86, ProcKey: "redis", KeepAlive: true, Body: serverBody},
		machine.TaskSpec{Name: "nic", Origin: mem.NodeX86, ProcKey: "redis", KeepAlive: true, Start: 500, Body: nicBody},
	)
	if err != nil {
		return res, err
	}
	for _, r := range results {
		if r.Err != nil {
			return res, r.Err
		}
	}
	return res, nil
}

// execute runs one command against the store, verifying results where the
// command returns data.
func execute(t *kernel.Task, store *Store, cmd Command, key, val []byte, res *BenchResult) error {
	switch cmd {
	case CmdGet:
		got, err := store.Get(t, key)
		if err != nil {
			return err
		}
		if got == nil {
			res.Errors++
		}
	case CmdSet:
		return store.Set(t, key, val)
	case CmdLPush:
		return store.Push(t, append([]byte("l:"), key...), val, true)
	case CmdRPush:
		return store.Push(t, append([]byte("l:"), key...), val, false)
	case CmdLPop:
		got, err := store.Pop(t, append([]byte("l:"), key...), true)
		if err != nil {
			return err
		}
		if got == nil {
			res.Errors++
		}
	case CmdRPop:
		got, err := store.Pop(t, append([]byte("l:"), key...), false)
		if err != nil {
			return err
		}
		if got == nil {
			res.Errors++
		}
	case CmdSAdd:
		_, err := store.SAdd(t, append([]byte("s:"), key...), val[:32])
		return err
	case CmdMSet:
		// MSET writes several keys in one request.
		for j := 0; j < 4; j++ {
			k := append([]byte(fmt.Sprintf("m%d:", j)), key...)
			if err := store.Set(t, k, val); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("redisapp: bad command %d", cmd)
	}
	return nil
}
