// Package redisapp is the reproduction's network-serving application
// (§9.2.8): a miniature Redis whose entire keyspace — dictionary buckets,
// entries, string values, list nodes and sets — lives in simulated memory,
// so every command's pointer chase is charged through the cache and
// coherence models. The server migrates to the other ISA at its time_event
// and keeps serving requests that arrive in origin-side RX buffers,
// exactly the situation whose cost Figure 14 compares across OSes.
package redisapp

import (
	"encoding/binary"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/pgtable"
)

// Value types stored in the dictionary.
const (
	typeString = 1
	typeList   = 2
	typeSet    = 3
)

// Entry layout (all fields 8 bytes):
//
//	+0  keyHash
//	+8  next entry (0 = end of chain)
//	+16 type
//	+24 valPtr (string block / list header / set header)
//	+32 keyLen
//	+40 key bytes...
const entryHdr = 40

// String block: +0 len, +8 bytes...
// List header: +0 head, +8 tail, +16 length.
// List node: +0 prev, +8 next, +16 len, +24 payload...
// Set header: a small dictionary of members (bucket array + chains).

// Arena is a bump allocator over a simulated-memory region; the store's
// objects are carved from it (Redis uses jemalloc; a bump arena keeps the
// layout deterministic while preserving the pointer-chasing behaviour).
//
// Two ownership modes share the struct. A private arena (NewArena) keeps
// its bump offset in host state — valid only while a single task (or the
// single-threaded seed server) allocates from it. A shared arena
// (NewSharedArena) keeps the offset in simulated memory, guarded by a
// futex-backed mutex, so cloned workers in different clock domains can
// allocate concurrently without a host-level data race: the offset word is
// ordinary coherent memory traffic like every other store field.
type Arena struct {
	base pgtable.VirtAddr
	size uint64
	off  uint64

	// Shared mode: offAddr is the simulated-memory bump offset and mu
	// serializes allocations. Both zero in private mode.
	offAddr pgtable.VirtAddr
	mu      futexMutex
}

// arenaCtl is the control-block size reserved at the base of a shared
// arena: the offset word at +0 and the allocator's futex word one cache
// line later, so bump traffic and lock traffic do not false-share.
const arenaCtl = 128

// NewArena reserves size bytes of task address space.
func NewArena(t *kernel.Task, size uint64, name string) (*Arena, error) {
	base, err := t.Proc.MmapAligned(size, 2<<20, kernel.VMARead|kernel.VMAWrite, name)
	if err != nil {
		return nil, err
	}
	return &Arena{base: base, size: size}, nil
}

// NewSharedArena reserves size bytes whose bump offset lives in simulated
// memory under a futex-backed lock, for stores shared by cloned workers.
func NewSharedArena(t *kernel.Task, size uint64, name string) (*Arena, error) {
	a, err := NewArena(t, size, name)
	if err != nil {
		return nil, err
	}
	a.offAddr = a.base
	a.mu = futexMutex{word: a.base + 64}
	if err := t.Store(a.offAddr, 8, arenaCtl); err != nil {
		return nil, err
	}
	if err := t.Store(a.mu.word, 8, 0); err != nil {
		return nil, err
	}
	return a, nil
}

// Alloc returns n bytes (8-byte aligned) of fresh arena space. On a shared
// arena the bump is a locked read-modify-write of the simulated offset
// word; on a private arena it is pure host bookkeeping (no simulated work),
// which keeps the single-threaded server's cycle counts unchanged.
func (a *Arena) Alloc(t *kernel.Task, n uint64) (pgtable.VirtAddr, error) {
	n = (n + 7) &^ 7
	if a.offAddr == 0 {
		if a.off+n > a.size {
			return 0, &StoreError{Kind: ErrArenaExhausted, Op: "alloc", Size: a.off + n, Limit: a.size}
		}
		p := a.base + pgtable.VirtAddr(a.off)
		a.off += n
		return p, nil
	}
	if err := a.mu.Lock(t); err != nil {
		return 0, err
	}
	off, err := t.Load(a.offAddr, 8)
	if err != nil {
		a.mu.Unlock(t)
		return 0, err
	}
	if off+n > a.size {
		a.mu.Unlock(t)
		return 0, &StoreError{Kind: ErrArenaExhausted, Op: "alloc", Size: off + n, Limit: a.size}
	}
	if err := t.Store(a.offAddr, 8, off+n); err != nil {
		a.mu.Unlock(t)
		return 0, err
	}
	if err := a.mu.Unlock(t); err != nil {
		return 0, err
	}
	return a.base + pgtable.VirtAddr(off), nil
}

// Prefault touches the first limit bytes of the arena (clamped to its
// size), one read per page, so demand-zero faults happen when the arena
// is built instead of inside the timed serve window — the simulated
// analogue of production redis pre-touching its heap. Loads, not stores:
// the fault handlers map anonymous pages writable on first touch, and a
// load never clobbers the control words a shared arena keeps at its base.
func (a *Arena) Prefault(t *kernel.Task, limit uint64) error {
	if limit > a.size {
		limit = a.size
	}
	for off := uint64(0); off < limit; off += mem.PageSize {
		if _, err := t.Load(a.base+pgtable.VirtAddr(off), 8); err != nil {
			return err
		}
	}
	return nil
}

// Used returns the bytes allocated so far from a private arena. Shared
// arenas keep the offset in simulated memory; use UsedAt.
func (a *Arena) Used() uint64 { return a.off }

// UsedAt reads the bytes allocated so far, in either mode.
func (a *Arena) UsedAt(t *kernel.Task) (uint64, error) {
	if a.offAddr == 0 {
		return a.off, nil
	}
	return t.Load(a.offAddr, 8)
}

// Store is the in-memory database.
type Store struct {
	arena    *Arena
	buckets  pgtable.VirtAddr // array of nBuckets u64 entry pointers
	nBuckets int
}

// NewStore builds an empty keyspace with the given bucket count.
func NewStore(t *kernel.Task, arena *Arena, nBuckets int) (*Store, error) {
	b, err := arena.Alloc(t, uint64(nBuckets)*8)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nBuckets; i++ {
		if err := t.Store(b+pgtable.VirtAddr(i*8), 8, 0); err != nil {
			return nil, err
		}
	}
	return &Store{arena: arena, buckets: b, nBuckets: nBuckets}, nil
}

// hashKey is the FNV-1a hash of a key (computed by the CPU: charged as
// compute work proportional to the key length).
func hashKey(t *kernel.Task, key []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, c := range key {
		h ^= uint64(c)
		h *= 1099511628211
	}
	t.Compute(int64(3 * len(key)))
	if h == 0 {
		h = 1
	}
	return h
}

func (s *Store) bucketAddr(h uint64) pgtable.VirtAddr {
	return s.buckets + pgtable.VirtAddr(int(h%uint64(s.nBuckets))*8)
}

// findEntry walks the hash chain for key, returning the entry address and
// the address of the pointer that references it (for unlinking).
func (s *Store) findEntry(t *kernel.Task, key []byte) (entry, ref pgtable.VirtAddr, err error) {
	h := hashKey(t, key)
	ref = s.bucketAddr(h)
	cur, err := t.Load(ref, 8)
	if err != nil {
		return 0, 0, err
	}
	for cur != 0 {
		e := pgtable.VirtAddr(cur)
		eh, err := t.Load(e, 8)
		if err != nil {
			return 0, 0, err
		}
		if eh == h {
			klen, err := t.Load(e+32, 8)
			if err != nil {
				return 0, 0, err
			}
			if int(klen) == len(key) {
				kb, err := t.ReadBytes(e+entryHdr, len(key))
				if err != nil {
					return 0, 0, err
				}
				if string(kb) == string(key) {
					return e, ref, nil
				}
			}
		}
		ref = e + 8
		cur, err = t.Load(ref, 8)
		if err != nil {
			return 0, 0, err
		}
	}
	return 0, ref, nil
}

// ensureEntry returns key's entry, creating a typed one if absent.
func (s *Store) ensureEntry(t *kernel.Task, key []byte, typ uint64) (pgtable.VirtAddr, error) {
	e, _, err := s.findEntry(t, key)
	if err != nil {
		return 0, err
	}
	if e != 0 {
		return e, nil
	}
	h := hashKey(t, key)
	e, err = s.arena.Alloc(t, entryHdr+uint64(len(key)))
	if err != nil {
		return 0, err
	}
	if err := t.Store(e, 8, h); err != nil {
		return 0, err
	}
	// Push at chain head.
	ba := s.bucketAddr(h)
	head, err := t.Load(ba, 8)
	if err != nil {
		return 0, err
	}
	if err := t.Store(e+8, 8, head); err != nil {
		return 0, err
	}
	if err := t.Store(e+16, 8, typ); err != nil {
		return 0, err
	}
	if err := t.Store(e+24, 8, 0); err != nil {
		return 0, err
	}
	if err := t.Store(e+32, 8, uint64(len(key))); err != nil {
		return 0, err
	}
	if err := t.WriteBytes(e+entryHdr, key); err != nil {
		return 0, err
	}
	if err := t.Store(ba, 8, uint64(e)); err != nil {
		return 0, err
	}
	return e, nil
}

// Set stores a string value under key.
func (s *Store) Set(t *kernel.Task, key, val []byte) error {
	if len(val) > maxStoreVal {
		return &StoreError{Kind: ErrValueTooLarge, Op: "set", Size: uint64(len(val)), Limit: maxStoreVal}
	}
	e, err := s.ensureEntry(t, key, typeString)
	if err != nil {
		return err
	}
	blk, err := s.arena.Alloc(t, 8+uint64(len(val)))
	if err != nil {
		return err
	}
	if err := t.Store(blk, 8, uint64(len(val))); err != nil {
		return err
	}
	if err := t.WriteBytes(blk+8, val); err != nil {
		return err
	}
	if err := t.Store(e+16, 8, typeString); err != nil {
		return err
	}
	return t.Store(e+24, 8, uint64(blk))
}

// Get returns key's string value, or nil if absent.
func (s *Store) Get(t *kernel.Task, key []byte) ([]byte, error) {
	e, _, err := s.findEntry(t, key)
	if err != nil || e == 0 {
		return nil, err
	}
	vp, err := t.Load(e+24, 8)
	if err != nil || vp == 0 {
		return nil, err
	}
	n, err := t.Load(pgtable.VirtAddr(vp), 8)
	if err != nil {
		return nil, err
	}
	return t.ReadBytes(pgtable.VirtAddr(vp)+8, int(n))
}

// listHeader returns (creating on demand) key's list header address.
func (s *Store) listHeader(t *kernel.Task, key []byte) (pgtable.VirtAddr, error) {
	e, err := s.ensureEntry(t, key, typeList)
	if err != nil {
		return 0, err
	}
	vp, err := t.Load(e+24, 8)
	if err != nil {
		return 0, err
	}
	if vp != 0 {
		return pgtable.VirtAddr(vp), nil
	}
	hd, err := s.arena.Alloc(t, 24)
	if err != nil {
		return 0, err
	}
	for off := 0; off < 24; off += 8 {
		if err := t.Store(hd+pgtable.VirtAddr(off), 8, 0); err != nil {
			return 0, err
		}
	}
	return hd, t.Store(e+24, 8, uint64(hd))
}

// Push appends val at the left or right end of key's list.
func (s *Store) Push(t *kernel.Task, key, val []byte, left bool) error {
	if len(val) > maxStoreVal {
		return &StoreError{Kind: ErrValueTooLarge, Op: "push", Size: uint64(len(val)), Limit: maxStoreVal}
	}
	hd, err := s.listHeader(t, key)
	if err != nil {
		return err
	}
	node, err := s.arena.Alloc(t, 24+uint64(len(val)))
	if err != nil {
		return err
	}
	if err := t.Store(node+16, 8, uint64(len(val))); err != nil {
		return err
	}
	if err := t.WriteBytes(node+24, val); err != nil {
		return err
	}
	head, err := t.Load(hd, 8)
	if err != nil {
		return err
	}
	tail, err := t.Load(hd+8, 8)
	if err != nil {
		return err
	}
	if left {
		if err := t.Store(node, 8, 0); err != nil { // prev
			return err
		}
		if err := t.Store(node+8, 8, head); err != nil { // next
			return err
		}
		if head != 0 {
			if err := t.Store(pgtable.VirtAddr(head), 8, uint64(node)); err != nil {
				return err
			}
		}
		if err := t.Store(hd, 8, uint64(node)); err != nil {
			return err
		}
		if tail == 0 {
			if err := t.Store(hd+8, 8, uint64(node)); err != nil {
				return err
			}
		}
	} else {
		if err := t.Store(node, 8, tail); err != nil {
			return err
		}
		if err := t.Store(node+8, 8, 0); err != nil {
			return err
		}
		if tail != 0 {
			if err := t.Store(pgtable.VirtAddr(tail)+8, 8, uint64(node)); err != nil {
				return err
			}
		}
		if err := t.Store(hd+8, 8, uint64(node)); err != nil {
			return err
		}
		if head == 0 {
			if err := t.Store(hd, 8, uint64(node)); err != nil {
				return err
			}
		}
	}
	n, err := t.Load(hd+16, 8)
	if err != nil {
		return err
	}
	return t.Store(hd+16, 8, n+1)
}

// Pop removes and returns the element at the left or right end of key's
// list (nil when empty).
func (s *Store) Pop(t *kernel.Task, key []byte, left bool) ([]byte, error) {
	e, _, err := s.findEntry(t, key)
	if err != nil || e == 0 {
		return nil, err
	}
	vp, err := t.Load(e+24, 8)
	if err != nil || vp == 0 {
		return nil, err
	}
	hd := pgtable.VirtAddr(vp)
	var nodeP uint64
	if left {
		nodeP, err = t.Load(hd, 8)
	} else {
		nodeP, err = t.Load(hd+8, 8)
	}
	if err != nil || nodeP == 0 {
		return nil, err
	}
	node := pgtable.VirtAddr(nodeP)
	prev, err := t.Load(node, 8)
	if err != nil {
		return nil, err
	}
	next, err := t.Load(node+8, 8)
	if err != nil {
		return nil, err
	}
	if left {
		if err := t.Store(hd, 8, next); err != nil {
			return nil, err
		}
		if next != 0 {
			if err := t.Store(pgtable.VirtAddr(next), 8, 0); err != nil {
				return nil, err
			}
		} else if err := t.Store(hd+8, 8, 0); err != nil {
			return nil, err
		}
	} else {
		if err := t.Store(hd+8, 8, prev); err != nil {
			return nil, err
		}
		if prev != 0 {
			if err := t.Store(pgtable.VirtAddr(prev)+8, 8, 0); err != nil {
				return nil, err
			}
		} else if err := t.Store(hd, 8, 0); err != nil {
			return nil, err
		}
	}
	n, err := t.Load(hd+16, 8)
	if err != nil {
		return nil, err
	}
	if err := t.Store(hd+16, 8, n-1); err != nil {
		return nil, err
	}
	ln, err := t.Load(node+16, 8)
	if err != nil {
		return nil, err
	}
	return t.ReadBytes(node+24, int(ln))
}

// LLen returns the length of key's list.
func (s *Store) LLen(t *kernel.Task, key []byte) (uint64, error) {
	e, _, err := s.findEntry(t, key)
	if err != nil || e == 0 {
		return 0, err
	}
	vp, err := t.Load(e+24, 8)
	if err != nil || vp == 0 {
		return 0, err
	}
	return t.Load(pgtable.VirtAddr(vp)+16, 8)
}

// SAdd inserts member into key's set, returning 1 if newly added.
func (s *Store) SAdd(t *kernel.Task, key, member []byte) (int, error) {
	if len(member) > maxStoreVal {
		return 0, &StoreError{Kind: ErrValueTooLarge, Op: "sadd", Size: uint64(len(member)), Limit: maxStoreVal}
	}
	e, err := s.ensureEntry(t, key, typeSet)
	if err != nil {
		return 0, err
	}
	vp, err := t.Load(e+24, 8)
	if err != nil {
		return 0, err
	}
	const setBuckets = 16
	if vp == 0 {
		hd, err := s.arena.Alloc(t, setBuckets*8)
		if err != nil {
			return 0, err
		}
		for i := 0; i < setBuckets; i++ {
			if err := t.Store(hd+pgtable.VirtAddr(i*8), 8, 0); err != nil {
				return 0, err
			}
		}
		if err := t.Store(e+24, 8, uint64(hd)); err != nil {
			return 0, err
		}
		vp = uint64(hd)
	}
	h := hashKey(t, member)
	ba := pgtable.VirtAddr(vp) + pgtable.VirtAddr(int(h%setBuckets)*8)
	cur, err := t.Load(ba, 8)
	if err != nil {
		return 0, err
	}
	for p := cur; p != 0; {
		m := pgtable.VirtAddr(p)
		mh, err := t.Load(m, 8)
		if err != nil {
			return 0, err
		}
		if mh == h {
			mlen, err := t.Load(m+16, 8)
			if err != nil {
				return 0, err
			}
			if int(mlen) == len(member) {
				mb, err := t.ReadBytes(m+24, len(member))
				if err != nil {
					return 0, err
				}
				if string(mb) == string(member) {
					return 0, nil // already present
				}
			}
		}
		p, err = t.Load(m+8, 8)
		if err != nil {
			return 0, err
		}
	}
	m, err := s.arena.Alloc(t, 24+uint64(len(member)))
	if err != nil {
		return 0, err
	}
	if err := t.Store(m, 8, h); err != nil {
		return 0, err
	}
	if err := t.Store(m+8, 8, cur); err != nil {
		return 0, err
	}
	if err := t.Store(m+16, 8, uint64(len(member))); err != nil {
		return 0, err
	}
	if err := t.WriteBytes(m+24, member); err != nil {
		return 0, err
	}
	if err := t.Store(ba, 8, uint64(m)); err != nil {
		return 0, err
	}
	return 1, nil
}

// fnvFold continues an FNV-1a hash over b.
func fnvFold(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// fnvFoldU64 folds an 8-byte little-endian framing word into the hash, so
// length fields can't alias adjacent byte content.
func fnvFoldU64(h, v uint64) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return fnvFold(h, buf[:])
}

const fnvBasis uint64 = 14695981039346656037

// Digest folds every entry's canonical hash into an order-independent sum,
// so two stores holding the same logical keyspace digest identically no
// matter how entries landed in buckets or where the arena placed them.
// Each entry hashes klen|key|type|content; list content preserves node
// order (lists are ordered), set content is an inner order-independent sum
// of member hashes (sets are not). The walk reads through the simulated
// cache like any other traversal.
func (s *Store) Digest(t *kernel.Task) (uint64, error) {
	var sum uint64
	for i := 0; i < s.nBuckets; i++ {
		cur, err := t.Load(s.buckets+pgtable.VirtAddr(i*8), 8)
		if err != nil {
			return 0, err
		}
		for cur != 0 {
			e := pgtable.VirtAddr(cur)
			klen, err := t.Load(e+32, 8)
			if err != nil {
				return 0, err
			}
			key, err := t.ReadBytes(e+entryHdr, int(klen))
			if err != nil {
				return 0, err
			}
			typ, err := t.Load(e+16, 8)
			if err != nil {
				return 0, err
			}
			vp, err := t.Load(e+24, 8)
			if err != nil {
				return 0, err
			}
			h := fnvFoldU64(fnvBasis, klen)
			h = fnvFold(h, key)
			h = fnvFoldU64(h, typ)
			h, err = s.digestValue(t, h, typ, vp)
			if err != nil {
				return 0, err
			}
			sum += h
			cur, err = t.Load(e+8, 8)
			if err != nil {
				return 0, err
			}
		}
	}
	return sum, nil
}

// digestValue hashes one entry's content per its type.
func (s *Store) digestValue(t *kernel.Task, h, typ, vp uint64) (uint64, error) {
	if vp == 0 {
		return fnvFoldU64(h, 0), nil
	}
	switch typ {
	case typeString:
		n, err := t.Load(pgtable.VirtAddr(vp), 8)
		if err != nil {
			return 0, err
		}
		val, err := t.ReadBytes(pgtable.VirtAddr(vp)+8, int(n))
		if err != nil {
			return 0, err
		}
		return fnvFold(fnvFoldU64(h, n), val), nil
	case typeList:
		cur, err := t.Load(pgtable.VirtAddr(vp), 8) // head
		if err != nil {
			return 0, err
		}
		for cur != 0 {
			node := pgtable.VirtAddr(cur)
			ln, err := t.Load(node+16, 8)
			if err != nil {
				return 0, err
			}
			payload, err := t.ReadBytes(node+24, int(ln))
			if err != nil {
				return 0, err
			}
			h = fnvFold(fnvFoldU64(h, ln), payload)
			cur, err = t.Load(node+8, 8) // next
			if err != nil {
				return 0, err
			}
		}
		return h, nil
	case typeSet:
		const setBuckets = 16
		var inner uint64
		for i := 0; i < setBuckets; i++ {
			cur, err := t.Load(pgtable.VirtAddr(vp)+pgtable.VirtAddr(i*8), 8)
			if err != nil {
				return 0, err
			}
			for cur != 0 {
				m := pgtable.VirtAddr(cur)
				mlen, err := t.Load(m+16, 8)
				if err != nil {
					return 0, err
				}
				mb, err := t.ReadBytes(m+24, int(mlen))
				if err != nil {
					return 0, err
				}
				inner += fnvFold(fnvFoldU64(fnvBasis, mlen), mb)
				cur, err = t.Load(m+8, 8)
				if err != nil {
					return 0, err
				}
			}
		}
		return fnvFoldU64(h, inner), nil
	}
	return fnvFoldU64(h, typ), nil
}
