package sim

import "testing"

func TestAtomicSectionSuppressesQuantumYield(t *testing.T) {
	e := NewEngine()
	e.Quantum = 10
	var order []string
	e.Spawn("a", 0, func(th *Thread) {
		th.BeginAtomic()
		// Way past the quantum, but no other thread may interleave.
		for i := 0; i < 10; i++ {
			th.Advance(100)
			order = append(order, "a")
		}
		th.EndAtomic()
	})
	e.Spawn("b", 0, func(th *Thread) {
		th.Advance(1)
		order = append(order, "b")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// "a" spawned first (same start time, lower ID) and holds the token
	// through its atomic section: all ten of its entries must be
	// contiguous.
	first := -1
	last := -1
	for i, s := range order {
		if s == "a" {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if last-first != 9 {
		t.Errorf("atomic section interleaved: %v", order)
	}
}

func TestAtomicSectionYieldsAfterEnd(t *testing.T) {
	e := NewEngine()
	e.Quantum = 10
	var bRan bool
	e.Spawn("a", 0, func(th *Thread) {
		th.BeginAtomic()
		th.Advance(1000)
		th.EndAtomic() // quantum exceeded: must yield here
		if !bRan {
			t.Error("EndAtomic did not yield to the lower-clock thread")
		}
	})
	e.Spawn("b", 0, func(th *Thread) {
		th.Advance(1)
		bRan = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicSectionsNest(t *testing.T) {
	e := NewEngine()
	e.Quantum = 1
	e.Spawn("a", 0, func(th *Thread) {
		th.BeginAtomic()
		th.BeginAtomic()
		th.Advance(100)
		th.EndAtomic()
		th.Advance(100) // still atomic (depth 1)
		th.EndAtomic()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEndAtomicWithoutBeginPanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", 0, func(th *Thread) {
		th.EndAtomic()
	})
	if err := e.Run(); err == nil {
		t.Fatal("unbalanced EndAtomic must surface as an error")
	}
}

func TestYieldPointInsideAtomicIsNoop(t *testing.T) {
	e := NewEngine()
	e.Quantum = 1
	var interleaved bool
	aDone := false
	e.Spawn("a", 0, func(th *Thread) {
		th.BeginAtomic()
		th.Advance(50)
		th.YieldPoint() // must not yield
		if interleaved {
			t.Error("YieldPoint yielded inside an atomic section")
		}
		th.EndAtomic()
		aDone = true
	})
	e.Spawn("b", 0, func(th *Thread) {
		th.Advance(1)
		if !aDone {
			interleaved = true
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWakeBeatsSleep(t *testing.T) {
	// A Wake landing while the target is runnable is consumed by the
	// target's next Block (futex wake-beats-sleep semantics).
	e := NewEngine()
	var target *Thread
	completed := false
	target = e.Spawn("target", 0, func(th *Thread) {
		th.Advance(100)
		// Wake already arrived (below): Block returns immediately.
		th.Block("should-not-park")
		completed = true
	})
	e.Spawn("waker", 0, func(th *Thread) {
		th.Advance(1)
		e.Wake(target, 10)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("deadlock means the wake was lost: %v", err)
	}
	if !completed {
		t.Fatal("target never completed")
	}
}
