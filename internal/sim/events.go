package sim

import "container/heap"

// Event is a callback scheduled to fire at a simulated time. Events are used
// for decoupled timers (e.g. the Redis server's time_event) rather than for
// thread scheduling, which the engine handles through thread clocks.
type Event struct {
	At Cycles
	Fn func()

	seq   int64 // tie-break for determinism
	index int   // heap bookkeeping
}

// EventQueue is a deterministic min-heap of events ordered by time, then by
// insertion order.
type EventQueue struct {
	h    eventHeap
	seqs int64
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// Schedule adds an event firing fn at time at and returns it (so callers can
// inspect or compare). Events at the same time fire in insertion order.
func (q *EventQueue) Schedule(at Cycles, fn func()) *Event {
	e := &Event{At: at, Fn: fn, seq: q.seqs}
	q.seqs++
	heap.Push(&q.h, e)
	return e
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// PeekTime returns the time of the earliest pending event. The boolean is
// false when the queue is empty.
func (q *EventQueue) PeekTime() (Cycles, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// RunDue pops and runs every event with At <= now, in timestamp order.
// It returns the number of events fired.
func (q *EventQueue) RunDue(now Cycles) int {
	n := 0
	for len(q.h) > 0 && q.h[0].At <= now {
		e := heap.Pop(&q.h).(*Event)
		e.Fn()
		n++
	}
	return n
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
