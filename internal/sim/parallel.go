package sim

import (
	"fmt"
	"sync"
)

// This file is the epoch-barriered conservative-parallel driver. It is the
// second driver behind the same Engine/Thread interface as Run (the
// sequential driver); a simulation built once can be driven by either, and
// the two must produce byte-identical results.
//
// The model: every thread belongs to a clock domain (a simulated node, or
// GlobalDomain). Domain-private state — a node's private caches, its
// directory shard, per-task TLBs, per-core run queues — may be touched
// while a thread holds only its domain token. Everything else (coherence
// across nodes, messaging rings, IPIs, the VFS, kernel allocators) is a
// cross-domain effect and must run under the single global token, which
// threads obtain by parking at a CrossDomain call.
//
// One epoch proceeds in two alternating phases:
//
//   - Domain phase: every domain with runnable threads below the epoch
//     horizon runs on its own host goroutine. Within a domain, threads run
//     one at a time in (clock, ID) order — the sequential engine's order
//     projected onto the domain. A domain stops when it has no runnable
//     thread below the horizon, or the instant one of its threads parks at
//     a cross-domain effect point (running a later sibling past a parked
//     earlier segment would reorder the domain's own sub-schedule).
//
//   - Serial phase: after all domains quiesce, parked continuations are
//     granted the global token one at a time in segment-key order — the
//     key is the thread's clock when its segment was granted, which is
//     exactly the order the sequential driver starts segments in. A
//     granted continuation runs until its next yield point, then the
//     domain phase reopens.
//
// Epoch boundaries are pure functions of simulated clocks (never host
// scheduling), so the same simulation reaches the same boundaries every
// run at every GOMAXPROCS. Determinism of the whole scheme additionally
// rests on the instrumentation contract — domain-phase execution touches
// only domain-private state, everything else parks first — which
// DESIGN.md §10 states precisely and the differential battery enforces.

// DefaultEpoch is the default epoch length in cycles. A multiple of the
// scheduling quantum keeps domain-phase segments from being cut short.
const DefaultEpoch Cycles = 100_000

// RunParallel drives the simulation to completion with the epoch-barriered
// parallel driver. An epoch length <= 0 selects DefaultEpoch. When a
// tracer is installed the sequential driver is used instead: trace byte
// streams are defined by the sequential schedule, and observation must not
// change what is observed.
func (e *Engine) RunParallel(epoch Cycles) error {
	if e.Tracer != nil {
		return e.Run()
	}
	if epoch <= 0 {
		epoch = DefaultEpoch
	}
	if e.running {
		return fmt.Errorf("sim: engine already running")
	}
	e.running = true
	defer func() { e.running = false }()

	var epochEnd Cycles
	for {
		if e.allDone() {
			return e.firstErr()
		}
		parked := e.minParked()
		next := e.pickNext()
		if parked == nil && next == nil {
			return e.deadlockErr()
		}

		// Serial admission: parked continuations, and every segment while a
		// thread needing the global token is runnable (its segment may touch
		// anything, so nothing may run concurrently with it, and segments
		// around it must keep their sequential order).
		if parked != nil || e.serialRunnable() {
			t := parked
			if t == nil || (next != nil && (next.now < t.segKey ||
				(next.now == t.segKey && next.ID < t.ID))) {
				t = next
			}
			e.grantSerial(t)
			if t.err != nil {
				return t.err
			}
			continue
		}

		// Domain phase. Advance the horizon so it covers the earliest
		// runnable thread (a function of simulated clocks only).
		if next.now >= epochEnd {
			epochEnd = next.now + epoch
		}
		if errT := e.runDomainPhase(epochEnd); errT != nil {
			return errT.err
		}
	}
}

// grantSerial hands t the global execution token for one segment: from its
// current position (a yield point, or a parked CrossDomain call) to its
// next yield point, block, park or exit.
func (e *Engine) grantSerial(t *Thread) {
	t.local = false
	if !t.parked {
		t.segKey = t.now
	}
	t.resume <- struct{}{}
	<-t.yield
}

// runDomainPhase runs every domain with admissible work on its own host
// goroutine and waits for all of them to quiesce. It returns the failed
// thread if any thread errored, preferring the lowest thread ID so the
// returned error does not depend on host scheduling.
func (e *Engine) runDomainPhase(epochEnd Cycles) *Thread {
	var domains []int
	seen := make(map[int]bool)
	for _, t := range e.threads {
		if t.domain == GlobalDomain || t.serialDepth > 0 || seen[t.domain] {
			continue
		}
		if t.state == stateRunnable && t.now < epochEnd {
			seen[t.domain] = true
			domains = append(domains, t.domain)
		}
	}
	var wg sync.WaitGroup
	errs := make([]*Thread, len(domains))
	for i, d := range domains {
		wg.Add(1)
		go func(i, d int) {
			defer wg.Done()
			errs[i] = e.runDomain(d, epochEnd)
		}(i, d)
	}
	wg.Wait()
	var failed *Thread
	for _, t := range errs {
		if t != nil && (failed == nil || t.ID < failed.ID) {
			failed = t
		}
	}
	return failed
}

// runDomain is one domain's scheduler for one domain phase: it repeatedly
// grants the domain's runnable thread with the smallest (clock, ID) below
// the horizon, and stops at quiesce or the moment a thread parks.
func (e *Engine) runDomain(d int, epochEnd Cycles) (failed *Thread) {
	for {
		var best *Thread
		for _, t := range e.threads {
			if t.domain != d || t.state != stateRunnable || t.now >= epochEnd || t.serialDepth > 0 {
				continue
			}
			if best == nil || t.now < best.now || (t.now == best.now && t.ID < best.ID) {
				best = t
			}
		}
		if best == nil {
			return nil
		}
		best.local = true
		best.segKey = best.now
		best.resume <- struct{}{}
		<-best.yield
		best.local = false
		if best.err != nil {
			return best
		}
		if best.parked {
			// The domain freezes behind its parked segment; the serial
			// phase will continue it in key order.
			return nil
		}
	}
}

// minParked returns the parked thread with the smallest (segment key, ID).
func (e *Engine) minParked() *Thread {
	var best *Thread
	for _, t := range e.threads {
		if !t.parked {
			continue
		}
		if best == nil || t.segKey < best.segKey || (t.segKey == best.segKey && t.ID < best.ID) {
			best = t
		}
	}
	return best
}

// serialRunnable reports whether any runnable thread requires the global
// token: global-domain threads always do, domain threads do while inside a
// BeginSerial section.
func (e *Engine) serialRunnable() bool {
	for _, t := range e.threads {
		if t.state == stateRunnable && (t.domain == GlobalDomain || t.serialDepth > 0) {
			return true
		}
	}
	return false
}
