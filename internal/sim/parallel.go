package sim

import (
	"fmt"
	"sync"
)

// This file is the epoch-barriered conservative-parallel driver. It is the
// second driver behind the same Engine/Thread interface as Run (the
// sequential driver); a simulation built once can be driven by either, and
// the two must produce byte-identical results.
//
// The model: every thread belongs to a clock domain (a simulated node, or
// GlobalDomain). Domain-private state — a node's private caches, its
// directory shard, per-task TLBs, per-core run queues, a claimed network
// stack's connection tables — may be touched while a thread holds only its
// domain token. Everything else (coherence across nodes, messaging rings,
// NIC rings and the switch fabric, IPIs, the VFS, kernel allocators) is a
// cross-domain effect and must run under the single global token, which
// threads obtain by parking at a CrossDomain call.
//
// One epoch proceeds in two alternating phases:
//
//   - Domain phase: every domain with runnable threads below the epoch
//     horizon runs on its own host goroutine. Within a domain, threads run
//     one at a time in (clock, ID) order — the sequential engine's order
//     projected onto the domain. A domain stops when it has no runnable
//     thread below the horizon, or the instant one of its threads parks at
//     a cross-domain effect point (running a later sibling past a parked
//     earlier segment would reorder the domain's own sub-schedule).
//
//   - Serial phase: after all domains quiesce, parked continuations are
//     granted the global token one at a time in segment-key order — the
//     key is the thread's clock when its segment was granted, which is
//     exactly the order the sequential driver starts segments in. A
//     granted continuation runs until its next yield point, then the
//     domain phase reopens.
//
// Serial-section narrowing: when at most one domain has runnable work and
// nothing needs the global token, a domain phase would run exactly one
// domain — all the phase machinery (goroutine hand-offs, CrossDomain
// parks, re-grants) buys nothing. The driver instead grants those threads
// serially, in the same (clock, ID) order the phase would have used. Both
// execution modes independently reproduce the sequential schedule, so
// switching between them at segment granularity is sound; the switch
// condition is a pure function of thread states and simulated clocks,
// never of host scheduling.
//
// Epoch boundaries are pure functions of simulated clocks (never host
// scheduling), so the same simulation reaches the same boundaries every
// run at every GOMAXPROCS. Determinism of the whole scheme additionally
// rests on the instrumentation contract — domain-phase execution touches
// only domain-private state, everything else parks first — which
// DESIGN.md §10 states precisely and the differential battery enforces.

// DefaultEpoch is the default epoch length in cycles. A multiple of the
// scheduling quantum keeps domain-phase segments from being cut short.
const DefaultEpoch Cycles = 100_000

// RunParallel drives the simulation to completion with the epoch-barriered
// parallel driver. An epoch length <= 0 selects DefaultEpoch. When a
// tracer is installed the sequential driver is used instead: trace byte
// streams are defined by the sequential schedule, and observation must not
// change what is observed.
func (e *Engine) RunParallel(epoch Cycles) error {
	if e.Tracer != nil {
		return e.Run()
	}
	if epoch <= 0 {
		epoch = DefaultEpoch
	}
	if e.running {
		return fmt.Errorf("sim: engine already running")
	}
	e.running = true
	defer func() { e.running = false }()

	var epochEnd Cycles
	for {
		// One pass over the threads computes everything admission needs:
		// the minimum parked continuation, the minimum runnable thread,
		// whether any runnable thread requires the global token, and how
		// many distinct domains have runnable domain-phase work.
		var parked, next *Thread
		serialNeed := false
		domains, firstDomain := 0, 0
		for _, t := range e.threads {
			if t.parked {
				if parked == nil || t.segKey < parked.segKey ||
					(t.segKey == parked.segKey && t.ID < parked.ID) {
					parked = t
				}
				continue
			}
			if t.state != stateRunnable {
				continue
			}
			if next == nil || t.now < next.now || (t.now == next.now && t.ID < next.ID) {
				next = t
			}
			if t.domain == GlobalDomain || t.serialDepth > 0 {
				serialNeed = true
			} else if domains == 0 {
				domains, firstDomain = 1, t.domain
			} else if t.domain != firstDomain {
				domains = 2 // "more than one" is all admission needs
			}
		}
		if parked == nil && next == nil {
			if e.allDone() {
				return e.firstErr()
			}
			return e.deadlockErr()
		}

		// Serial admission: parked continuations, every segment while a
		// thread needing the global token is runnable (its segment may touch
		// anything, so nothing may run concurrently with it, and segments
		// around it must keep their sequential order) — and, as the narrow
		// fast path, every segment while at most one domain is active.
		if parked != nil || serialNeed || domains <= 1 {
			t := parked
			if t == nil || (next != nil && (next.now < t.segKey ||
				(next.now == t.segKey && next.ID < t.ID))) {
				t = next
			}
			solo := parked == nil && !serialNeed
			c0 := t.now
			e.grantSerial(t)
			if solo {
				e.Stats.SoloSegments++
				e.Stats.SoloCycles += t.now - c0
			} else {
				e.Stats.SerialSegments++
				e.Stats.SerialCycles += t.now - c0
			}
			if t.err != nil {
				return t.err
			}
			continue
		}

		// Domain phase. Advance the horizon so it covers the earliest
		// runnable thread (a function of simulated clocks only).
		if next.now >= epochEnd {
			epochEnd = next.now + epoch
		}
		if errT := e.runDomainPhase(epochEnd); errT != nil {
			return errT.err
		}
	}
}

// grantSerial hands t the global execution token for one segment: from its
// current position (a yield point, or a parked CrossDomain call) to its
// next yield point, block, park or exit.
func (e *Engine) grantSerial(t *Thread) {
	t.local = false
	if !t.parked {
		t.segKey = t.now
	}
	t.resume <- struct{}{}
	<-t.yield
}

// domainRun is one domain's accounting for one domain phase.
type domainRun struct {
	failed *Thread
	segs   int64
	cycles Cycles
	parked bool
}

// runDomainPhase runs every domain with admissible work on its own host
// goroutine and waits for all of them to quiesce; a phase with exactly one
// admissible domain runs inline on the driver goroutine (cheap, and common
// when domains' clocks are skewed across the horizon). It returns the
// failed thread if any thread errored, preferring the lowest thread ID so
// the returned error does not depend on host scheduling.
func (e *Engine) runDomainPhase(epochEnd Cycles) *Thread {
	e.phaseDomains = e.phaseDomains[:0]
	for _, t := range e.threads {
		if t.domain == GlobalDomain || t.serialDepth > 0 ||
			t.state != stateRunnable || t.now >= epochEnd {
			continue
		}
		seen := false
		for _, d := range e.phaseDomains {
			if d == t.domain {
				seen = true
				break
			}
		}
		if !seen {
			e.phaseDomains = append(e.phaseDomains, t.domain)
		}
	}
	e.Stats.Phases++
	e.Stats.PhaseDomains += int64(len(e.phaseDomains))
	if w := int64(len(e.phaseDomains)); w > e.Stats.MaxPhaseWidth {
		e.Stats.MaxPhaseWidth = w
	}
	var runs []domainRun
	if len(e.phaseDomains) == 1 {
		runs = []domainRun{e.runDomain(e.phaseDomains[0], epochEnd)}
	} else {
		runs = make([]domainRun, len(e.phaseDomains))
		var wg sync.WaitGroup
		for i, d := range e.phaseDomains {
			wg.Add(1)
			go func(i, d int) {
				defer wg.Done()
				runs[i] = e.runDomain(d, epochEnd)
			}(i, d)
		}
		wg.Wait()
	}
	var failed *Thread
	for _, r := range runs {
		e.Stats.DomainSegments += r.segs
		e.Stats.DomainCycles += r.cycles
		if r.parked {
			e.Stats.Parks++
		}
		if r.failed != nil && (failed == nil || r.failed.ID < failed.ID) {
			failed = r.failed
		}
	}
	return failed
}

// runDomain is one domain's scheduler for one domain phase: it repeatedly
// grants the domain's runnable thread with the smallest (clock, ID) below
// the horizon, and stops at quiesce or the moment a thread parks.
func (e *Engine) runDomain(d int, epochEnd Cycles) (r domainRun) {
	for {
		var best *Thread
		for _, t := range e.threads {
			if t.domain != d || t.state != stateRunnable || t.now >= epochEnd || t.serialDepth > 0 {
				continue
			}
			if best == nil || t.now < best.now || (t.now == best.now && t.ID < best.ID) {
				best = t
			}
		}
		if best == nil {
			return r
		}
		best.local = true
		best.segKey = best.now
		c0 := best.now
		best.resume <- struct{}{}
		<-best.yield
		best.local = false
		r.segs++
		r.cycles += best.now - c0
		if best.err != nil {
			r.failed = best
			return r
		}
		if best.parked {
			// The domain freezes behind its parked segment; the serial
			// phase will continue it in key order.
			r.parked = true
			return r
		}
	}
}
