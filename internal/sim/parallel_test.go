package sim

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/trace"
)

// discardTracer is a non-nil tracer that drops every event; its presence
// alone must force RunParallel onto the sequential path.
type discardTracer struct{}

func (discardTracer) Emit(trace.Event) {}

// The parallel driver's contract is byte-identical results with the
// sequential driver. These tests exercise it on a synthetic multi-domain
// workload whose observable outcome — a ledger of cross-domain events in
// commit order plus every thread's final clock — is sensitive to any
// scheduling divergence: if the parallel driver ever orders a serial
// segment differently, runs a domain past an interaction, or loses a
// wake, the ledger or the clocks change.

// synthWorld is the shared cross-domain state of the synthetic workload.
// It is touched only under the global token (inside serial sections), so
// the sequential and parallel drivers must append to the ledger in the
// same order.
type synthWorld struct {
	eng     *Engine
	threads []*Thread
	ledger  []string
	counter int64
}

// synthSpec sizes one synthetic run.
type synthSpec struct {
	domains    int
	perDomain  int
	steps      int
	rendezvous bool // even threads block mid-run, odd threads wake them
}

// buildSynth spawns the workload. Each thread mixes domain-local work
// (advances, atomic sections, quantum yields) with cross-domain commits;
// the mix is a deterministic function of (thread index, step), never of
// host scheduling.
func buildSynth(spec synthSpec) *synthWorld {
	w := &synthWorld{eng: NewEngine()}
	n := spec.domains * spec.perDomain
	for i := 0; i < n; i++ {
		i := i
		t := w.eng.Spawn(fmt.Sprintf("synth%d", i), Cycles(i*17), func(t *Thread) {
			for s := 0; s < spec.steps; s++ {
				if spec.rendezvous && s == spec.steps/2 {
					if i%2 == 0 {
						t.Block("synth-rendezvous")
					} else {
						// Wakes cross domains: strictly a serial affair.
						t.BeginSerial()
						w.eng.Wake(w.threads[i-1], t.Now()+100)
						w.ledger = append(w.ledger, fmt.Sprintf("t%d s%d wake t%d @%d", i, s, i-1, t.Now()))
						t.EndSerial()
					}
				}
				switch (s*7 + i*3) % 5 {
				case 0:
					// Cross-domain commit: point park, then touch shared
					// state before the next possible yield.
					t.CrossDomain()
					w.counter++
					w.ledger = append(w.ledger, fmt.Sprintf("t%d s%d @%d c%d", i, s, t.Now(), w.counter))
					t.Advance(Cycles(13 + i))
				case 1:
					// Serial section spanning yields: shared touches on both
					// sides of a YieldPoint.
					t.BeginSerial()
					w.counter += 2
					t.Advance(Cycles(40000)) // crosses the quantum: yields inside the section
					t.YieldPoint()
					w.ledger = append(w.ledger, fmt.Sprintf("t%d s%d serial @%d c%d", i, s, t.Now(), w.counter))
					t.EndSerial()
				case 2:
					// Domain-local atomic work.
					t.BeginAtomic()
					t.Advance(Cycles((i*13+s*31)%97 + 1))
					t.EndAtomic()
				case 3:
					t.Advance(Cycles((i+s)%29 + 5))
				default:
					// Plain local progress with scheduling points.
					t.Advance(Cycles((i*7+s)%61 + 1))
					t.YieldPoint()
				}
			}
		})
		t.SetDomain(i % spec.domains)
		w.threads = append(w.threads, t)
	}
	return w
}

// outcome flattens a finished run into a comparable value.
func (w *synthWorld) outcome() string {
	out := fmt.Sprintf("counter=%d\n", w.counter)
	for _, l := range w.ledger {
		out += l + "\n"
	}
	for _, t := range w.threads {
		out += fmt.Sprintf("final t%d @%d\n", t.ID, t.Now())
	}
	return out
}

// runSynth executes one spec under the chosen driver and returns the
// outcome.
func runSynth(t *testing.T, spec synthSpec, epoch Cycles, parallel bool) string {
	t.Helper()
	w := buildSynth(spec)
	var err error
	if parallel {
		err = w.eng.RunParallel(epoch)
	} else {
		err = w.eng.Run()
	}
	if err != nil {
		t.Fatalf("driver error: %v", err)
	}
	return w.outcome()
}

var synthSpecs = []synthSpec{
	{domains: 1, perDomain: 1, steps: 40},
	{domains: 2, perDomain: 1, steps: 60},
	{domains: 2, perDomain: 3, steps: 80},
	{domains: 4, perDomain: 2, steps: 50, rendezvous: true},
	{domains: 3, perDomain: 4, steps: 70, rendezvous: true},
}

// TestParallelMatchesSequential is the core differential test: for every
// synthetic spec the parallel driver must reproduce the sequential
// driver's ledger and final clocks exactly.
func TestParallelMatchesSequential(t *testing.T) {
	for si, spec := range synthSpecs {
		want := runSynth(t, spec, 0, false)
		got := runSynth(t, spec, 0, true)
		if got != want {
			t.Errorf("spec %d: parallel diverged from sequential\nseq:\n%s\npar:\n%s", si, want, got)
		}
	}
}

// TestEpochMetamorphic varies only the epoch length — including the
// degenerate 1-cycle epoch — and demands identical outcomes. Epoch length
// must trade wall time, never results.
func TestEpochMetamorphic(t *testing.T) {
	spec := synthSpecs[3]
	want := runSynth(t, spec, 0, false)
	for _, epoch := range []Cycles{1, 17, 1000, 20000, DefaultEpoch, 10 * DefaultEpoch} {
		if got := runSynth(t, spec, epoch, true); got != want {
			t.Errorf("epoch %d diverged from sequential oracle", epoch)
		}
	}
}

// TestParallelDeterminismAcrossGOMAXPROCS re-runs the parallel driver
// under different host parallelism levels; simulated outcomes must not
// notice the host.
func TestParallelDeterminismAcrossGOMAXPROCS(t *testing.T) {
	spec := synthSpecs[4]
	want := runSynth(t, spec, 0, false)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		for rep := 0; rep < 3; rep++ {
			if got := runSynth(t, spec, 0, true); got != want {
				t.Errorf("GOMAXPROCS=%d rep %d diverged", procs, rep)
			}
		}
	}
}

// TestRunParallelAlreadyRunning mirrors the sequential driver's re-entry
// error.
func TestRunParallelAlreadyRunning(t *testing.T) {
	e := NewEngine()
	var inner error
	e.Spawn("re-entrant", 0, func(t *Thread) {
		inner = e.RunParallel(0)
	})
	if err := e.RunParallel(0); err != nil {
		t.Fatalf("outer run: %v", err)
	}
	if inner == nil {
		t.Fatal("nested RunParallel did not error")
	}
}

// TestRunParallelDeadlock: a blocked thread with no waker must be reported
// as a deadlock, exactly like the sequential driver.
func TestRunParallelDeadlock(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		e := NewEngine()
		th := e.Spawn("stuck", 0, func(t *Thread) {
			t.Block("never-woken")
		})
		th.SetDomain(0)
		var err error
		if parallel {
			err = e.RunParallel(0)
		} else {
			err = e.Run()
		}
		if err == nil {
			t.Errorf("parallel=%v: no deadlock error", parallel)
		}
	}
}

// TestRunParallelThreadError: a panicking domain thread surfaces as the
// run's error under both drivers.
func TestRunParallelThreadError(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		e := NewEngine()
		th := e.Spawn("boom", 0, func(t *Thread) {
			t.Advance(10)
			panic("synthetic failure")
		})
		th.SetDomain(0)
		var err error
		if parallel {
			err = e.RunParallel(0)
		} else {
			err = e.Run()
		}
		if err == nil {
			t.Errorf("parallel=%v: thread panic not propagated", parallel)
		}
	}
}

// TestRunParallelTracerFallsBack: an installed tracer forces the
// sequential driver (trace streams are defined by the sequential
// schedule), so a traced parallel run must behave exactly like Run.
func TestRunParallelTracerFallsBack(t *testing.T) {
	spec := synthSpecs[2]
	want := runSynth(t, spec, 0, false)
	w := buildSynth(spec)
	w.eng.Tracer = discardTracer{}
	if err := w.eng.RunParallel(0); err != nil {
		t.Fatal(err)
	}
	if got := w.outcome(); got != want {
		t.Error("traced RunParallel diverged from sequential")
	}
}

// FuzzEpochSchedule fuzzes the workload shape and epoch length against
// the sequential oracle: any (domains, threads, steps, epoch) the fuzzer
// finds must still produce identical outcomes under both drivers.
func FuzzEpochSchedule(f *testing.F) {
	f.Add(int8(2), int8(2), int16(50), int64(1000), false)
	f.Add(int8(1), int8(1), int16(10), int64(1), false)
	f.Add(int8(4), int8(3), int16(60), int64(100000), true)
	f.Add(int8(3), int8(2), int16(40), int64(7), true)
	f.Fuzz(func(t *testing.T, domains, perDomain int8, steps int16, epoch int64, rendezvous bool) {
		d := int(domains)%4 + 1
		p := int(perDomain)%3 + 1
		st := int(steps) % 80
		if d < 1 || p < 1 || st < 1 {
			t.Skip()
		}
		if rendezvous && (d*p)%2 != 0 {
			// The rendezvous pairing needs an even thread count.
			rendezvous = false
		}
		spec := synthSpec{domains: d, perDomain: p, steps: st, rendezvous: rendezvous}
		seqW := buildSynth(spec)
		if err := seqW.eng.Run(); err != nil {
			t.Fatalf("sequential oracle: %v", err)
		}
		parW := buildSynth(spec)
		if err := parW.eng.RunParallel(Cycles(epoch)); err != nil {
			t.Fatalf("parallel: %v", err)
		}
		if got, want := parW.outcome(), seqW.outcome(); got != want {
			t.Errorf("divergence at domains=%d per=%d steps=%d epoch=%d\nseq:\n%s\npar:\n%s",
				d, p, st, epoch, want, got)
		}
	})
}

// benchSink keeps the benchmark's per-step compute from being optimized
// away.
var benchSink uint64

// BenchmarkEngineParallel measures host-core scaling of the parallel
// driver on a domain-heavy workload: 8 domains whose threads carry real
// host compute between scheduling points (standing in for the cache and
// translation work a machine thread does per access) and park
// cross-domain only occasionally. BENCH_pr6.json records its results;
// on a single-core host expect parity with seq, not speedup.
func BenchmarkEngineParallel(b *testing.B) {
	const domains = 8
	build := func() *Engine {
		e := NewEngine()
		for d := 0; d < domains; d++ {
			d := d
			t := e.Spawn(fmt.Sprintf("dom%d", d), 0, func(t *Thread) {
				h := uint64(d + 1)
				for s := 0; s < 2000; s++ {
					for k := 0; k < 400; k++ {
						h ^= h << 13
						h ^= h >> 7
						h ^= h << 17
					}
					t.Advance(Cycles(h%97 + 1))
					if s%200 == 199 {
						t.CrossDomain()
						t.Advance(10)
					}
					if s%10 == 9 {
						t.YieldPoint()
					}
				}
				benchSink += h
			})
			t.SetDomain(d)
		}
		return e
	}
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := build().Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par-procs%d", procs), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
			runtime.GOMAXPROCS(procs)
			for i := 0; i < b.N; i++ {
				if err := build().RunParallel(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
