package sim

// RNG is a small deterministic pseudo-random generator (xorshift64*) used by
// simulation components that need reproducible jitter (e.g. the IPI topology
// latency model). It is deliberately independent of math/rand so simulation
// results can never drift with Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed; a zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a deterministic value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a deterministic value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Norm returns an approximately normally distributed value with mean 0 and
// standard deviation 1, using the sum of 12 uniforms (Irwin–Hall). Accurate
// enough for latency jitter modelling and fully deterministic.
func (r *RNG) Norm() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}
