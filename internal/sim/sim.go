// Package sim provides the deterministic discrete-event simulation core on
// which the whole Stramash reproduction runs.
//
// The engine models simulated time in CPU cycles. Every simulated thread of
// execution owns a local clock that advances as the thread consumes cycles
// (instructions, cache hits and misses, message latencies). The engine
// co-schedules threads conservatively: the runnable thread with the smallest
// local clock always runs next, so the interleaving of cross-thread
// interactions (atomics, IPIs, futex wake-ups) is a deterministic function of
// the simulated timeline, never of host goroutine scheduling.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Cycles is a duration or point in simulated time, measured in CPU cycles of
// the node the thread runs on. Cycle counts from nodes with different clock
// rates are comparable only after conversion through a Clock.
type Cycles int64

// Clock converts between cycles and wall time for one node's frequency.
type Clock struct {
	// Hz is the node frequency in cycles per second.
	Hz int64
}

// Nanos returns the wall-clock nanoseconds corresponding to c cycles.
func (k Clock) Nanos(c Cycles) int64 {
	return int64(float64(c) / float64(k.Hz) * 1e9)
}

// Micros returns the wall-clock microseconds corresponding to c cycles.
func (k Clock) Micros(c Cycles) float64 {
	return float64(c) / float64(k.Hz) * 1e6
}

// Millis returns the wall-clock milliseconds corresponding to c cycles.
func (k Clock) Millis(c Cycles) float64 {
	return float64(c) / float64(k.Hz) * 1e3
}

// FromMicros returns the cycle count corresponding to us microseconds.
func (k Clock) FromMicros(us float64) Cycles {
	return Cycles(us * float64(k.Hz) / 1e6)
}

// FromNanos returns the cycle count corresponding to ns nanoseconds.
func (k Clock) FromNanos(ns float64) Cycles {
	return Cycles(ns * float64(k.Hz) / 1e9)
}

// ThreadID identifies a simulated thread within an Engine.
type ThreadID int

// GlobalDomain marks a thread that may touch any simulated state (boot,
// setup, service threads). The parallel driver never runs such threads
// concurrently with anything else; the sequential driver ignores domains
// entirely.
const GlobalDomain = -1

// threadState is the lifecycle state of a simulated thread.
type threadState int

const (
	stateRunnable threadState = iota
	stateRunning
	stateBlocked
	stateDone
)

func (s threadState) String() string {
	switch s {
	case stateRunnable:
		return "runnable"
	case stateRunning:
		return "running"
	case stateBlocked:
		return "blocked"
	case stateDone:
		return "done"
	}
	return fmt.Sprintf("threadState(%d)", int(s))
}

// Thread is a simulated thread of execution. The body function runs on its
// own goroutine but only while the engine has granted it the (single)
// execution token, so at most one simulated thread executes at a time and
// the simulation stays deterministic.
type Thread struct {
	ID   ThreadID
	Name string

	eng   *Engine
	state threadState
	now   Cycles // local clock
	// quantum counts cycles consumed since the thread last yielded; when it
	// exceeds the engine quantum the thread voluntarily yields so that other
	// threads with smaller clocks can catch up.
	sinceYield Cycles

	resume chan struct{} // engine -> thread: you may run
	yield  chan struct{} // thread -> engine: I stopped running

	// atomicDepth suppresses scheduler yields while > 0 (BeginAtomic).
	atomicDepth int

	// preempt, when non-nil, runs at every yield point after the thread
	// regains the execution token. A software scheduler built above the
	// engine (the kernel's CPU scheduler) installs it to implement
	// time-slicing: the hook may Block the thread to hand its simulated
	// CPU to another task. It never fires inside an atomic section
	// (YieldPoint returns early there) and never fires reentrantly.
	preempt    func()
	inPreempt  bool
	preemptOff int

	// wakePending records a Wake that arrived while the thread was not
	// blocked (e.g. between a futex enqueue and the Block call). The next
	// Block consumes it and returns immediately — the classic "wake beats
	// sleep" race resolved the way real futexes do, by allowing spurious
	// wake-ups that callers' retry loops absorb.
	wakePending bool

	blockReason string
	err         error

	// domain is the clock domain the thread belongs to (a node index for
	// task threads, GlobalDomain for boot/setup threads). Only the parallel
	// driver reads it: threads of different domains may run concurrently on
	// host goroutines between cross-domain interaction points.
	domain int
	// local is true while the parallel driver is running this thread inside
	// a domain-parallel phase: the thread holds its domain's token, not the
	// global one, and must confine itself to domain-private state. Code
	// reaching a cross-domain effect point calls CrossDomain, which parks
	// the thread until the driver re-grants it the global token.
	local bool
	// parked is true between a CrossDomain call and the serial re-grant.
	parked bool
	// serialDepth counts open BeginSerial sections. While positive the
	// thread must only ever be granted serially — a mid-section yield
	// (quantum expiry, futex sleep) must not hand it back inside a later
	// domain-parallel phase, because the rest of the section still touches
	// cross-domain state.
	serialDepth int
	// segKey is the thread's clock at the moment its current run segment was
	// granted. The sequential engine orders segments by (clock at grant, ID);
	// the parallel driver serializes parked cross-domain continuations in
	// exactly that key order, which is what makes the two drivers agree.
	segKey Cycles
}

// Now returns the thread's local simulated time.
func (t *Thread) Now() Cycles { return t.now }

// Domain returns the thread's clock domain.
func (t *Thread) Domain() int { return t.domain }

// SetDomain assigns the thread to a clock domain. It must be called while
// the engine is idle, from a serially-running thread (migration runs under
// the global token), or on the thread itself — never from another domain's
// parallel phase.
func (t *Thread) SetDomain(d int) { t.domain = d }

// InLocal reports whether the thread currently holds only its domain token
// (parallel driver, domain-parallel phase). Code on the hot path uses it to
// choose between the domain-confined fast path and a CrossDomain bailout.
// Under the sequential driver it is always false.
func (t *Thread) InLocal() bool { return t.local }

// CrossDomain is the cross-domain effect point: a no-op under the
// sequential driver (and for serially-granted threads), but under the
// parallel driver's domain phase it parks the thread until the driver has
// quiesced every domain and re-grants this thread the global execution
// token, in segment-key order. After it returns the thread may touch any
// simulated state until its next YieldPoint.
//
// Instrumented code must call it before mutating any shared state and
// before charging any cycles for the operation that needs it, so the
// operation re-executes from a clean slate under the global token.
func (t *Thread) CrossDomain() {
	if !t.local {
		return
	}
	t.local = false
	t.parked = true
	t.yield <- struct{}{}
	<-t.resume
	t.parked = false
}

// BeginSerial opens a serial section: the thread parks out of any
// domain-parallel phase immediately (CrossDomain) and, until the matching
// EndSerial, the parallel driver will only ever grant it under the global
// token — even across yields and blocks inside the section. Use it to
// bracket whole operations on cross-domain state (a file syscall, a fault,
// a migration); use bare CrossDomain only when every shared touch happens
// before the next possible yield. Sections nest. Under the sequential
// driver both calls are near-free no-ops.
func (t *Thread) BeginSerial() {
	t.serialDepth++
	t.CrossDomain()
}

// EndSerial closes a BeginSerial section.
func (t *Thread) EndSerial() {
	if t.serialDepth == 0 {
		panic(fmt.Sprintf("sim: thread %q EndSerial without BeginSerial", t.Name))
	}
	t.serialDepth--
}

// Advance consumes d cycles of simulated time on this thread. If the thread
// has consumed more than the engine quantum since it last yielded, it hands
// control back to the scheduler so lower-clocked threads can run — unless
// the thread is inside an atomic section.
func (t *Thread) Advance(d Cycles) {
	if d < 0 {
		panic(fmt.Sprintf("sim: thread %q advanced by negative duration %d", t.Name, d))
	}
	t.now += d
	t.sinceYield += d
	if t.sinceYield >= t.eng.Quantum && t.atomicDepth == 0 {
		t.YieldPoint()
	}
}

// BeginAtomic enters a section during which the thread will not yield to
// the scheduler: used to model operations that are indivisible on real
// hardware, such as a store together with the permission check that
// preceded it (a PTE downgrade cannot slide between the two, because TLB
// shootdowns complete before the downgrade proceeds). Sections nest.
func (t *Thread) BeginAtomic() { t.atomicDepth++ }

// EndAtomic leaves an atomic section, yielding if the quantum expired
// meanwhile.
func (t *Thread) EndAtomic() {
	if t.atomicDepth == 0 {
		panic(fmt.Sprintf("sim: thread %q EndAtomic without BeginAtomic", t.Name))
	}
	t.atomicDepth--
	if t.atomicDepth == 0 && t.sinceYield >= t.eng.Quantum {
		t.YieldPoint()
	}
}

// AdvanceTo moves the thread's local clock forward to at least when. It is a
// no-op if the clock is already past when. Used when an interaction with
// another thread (a message, a wake-up) imposes a happens-before edge.
func (t *Thread) AdvanceTo(when Cycles) {
	if when > t.now {
		t.Advance(when - t.now)
	}
}

// YieldPoint is an explicit scheduling point: the thread offers the engine a
// chance to run another thread whose clock is behind. Simulated code must
// call this (directly or via Advance) around synchronization operations so
// that cross-thread orderings follow simulated time. Inside an atomic
// section it is a no-op.
func (t *Thread) YieldPoint() {
	if t.atomicDepth > 0 {
		return
	}
	t.sinceYield = 0
	t.state = stateRunnable
	t.yield <- struct{}{}
	<-t.resume
	t.state = stateRunning
	if t.preempt != nil && !t.inPreempt && t.preemptOff == 0 {
		t.inPreempt = true
		t.preempt()
		t.inPreempt = false
	}
}

// DisablePreempt suppresses the preemption hook (not the yield itself)
// until a matching EnablePreempt. Sections nest. Kernel code uses it the
// way real kernels disable preemption while holding a spinlock: a task
// must not be descheduled while it holds a simulated kernel lock, or while
// it sits in the window between a futex enqueue and its sleep, where a
// preemption could consume the wake-up destined for the futex Block.
func (t *Thread) DisablePreempt() { t.preemptOff++ }

// EnablePreempt leaves a DisablePreempt section.
func (t *Thread) EnablePreempt() {
	if t.preemptOff == 0 {
		panic(fmt.Sprintf("sim: thread %q EnablePreempt without DisablePreempt", t.Name))
	}
	t.preemptOff--
}

// SetPreempt installs (or, with nil, removes) the thread's preemption
// hook. The hook runs at every yield point outside atomic sections, on the
// thread's own goroutine while it holds the execution token, so it may
// consult simulated state and call Block to give up the CPU. Installing a
// hook that never blocks and charges no cycles leaves the simulated
// timeline untouched.
func (t *Thread) SetPreempt(h func()) { t.preempt = h }

// Block parks the thread until another thread calls Engine.Wake. If a Wake
// already arrived since the thread last ran (wake-beats-sleep), Block
// returns immediately. The reason string is reported by deadlock
// diagnostics.
func (t *Thread) Block(reason string) {
	if t.wakePending {
		t.wakePending = false
		return
	}
	if tr := t.eng.Tracer; tr != nil {
		tr.Emit(trace.Event{Cycle: int64(t.now), Kind: trace.KindThreadBlock,
			Tid: int32(t.ID), Node: -1, Name: reason})
	}
	t.blockReason = reason
	t.sinceYield = 0
	t.state = stateBlocked
	t.yield <- struct{}{}
	<-t.resume
	t.state = stateRunning
	t.blockReason = ""
}

// Engine owns a set of simulated threads and runs them deterministically.
type Engine struct {
	// Quantum is the maximum number of cycles a thread may consume before the
	// scheduler re-evaluates which thread has the smallest clock. Smaller
	// quanta interleave more finely (and run slower). The default suits
	// workloads that synchronize through explicit YieldPoints.
	Quantum Cycles

	// Tracer, when non-nil, receives thread lifecycle events (spawn,
	// context switch, block, wake, done). Emitting never advances any
	// simulated clock, so tracing cannot perturb the schedule.
	Tracer trace.Tracer

	// Stats accumulates host-side driver counters across runs. They are
	// deterministic but driver-dependent; see EngineStats.
	Stats EngineStats

	threads []*Thread
	lastRun ThreadID
	running bool

	// phaseDomains is the parallel driver's reusable phase scratch.
	phaseDomains []int
}

// NewEngine returns an engine with the default scheduling quantum.
func NewEngine() *Engine {
	return &Engine{Quantum: 20000, lastRun: -1}
}

// Spawn creates a new simulated thread executing body. The thread's local
// clock starts at start cycles (usually the spawner's current time). Spawn
// may be called before Run or from inside a running thread.
func (e *Engine) Spawn(name string, start Cycles, body func(t *Thread)) *Thread {
	t := &Thread{
		ID:     ThreadID(len(e.threads)),
		Name:   name,
		eng:    e,
		state:  stateRunnable,
		now:    start,
		domain: GlobalDomain,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.threads = append(e.threads, t)
	if tr := e.Tracer; tr != nil {
		tr.Emit(trace.Event{Cycle: int64(start), Kind: trace.KindThreadSpawn,
			Tid: int32(t.ID), Node: -1, Name: name})
	}
	go func() {
		<-t.resume
		t.state = stateRunning
		defer func() {
			if r := recover(); r != nil {
				t.err = fmt.Errorf("sim: thread %q panicked: %v", t.Name, r)
			}
			t.state = stateDone
			if tr := e.Tracer; tr != nil {
				tr.Emit(trace.Event{Cycle: int64(t.now), Kind: trace.KindThreadDone,
					Tid: int32(t.ID), Node: -1, Name: t.Name})
			}
			t.yield <- struct{}{}
		}()
		body(t)
	}()
	return t
}

// Wake marks a blocked thread runnable, advancing its clock to at least when
// (the simulated time at which the wake-up reaches it). Waking a thread that
// is not blocked leaves a pending wake that the thread's next Block consumes
// immediately — so a wake can never be lost between a waiter's enqueue and
// its sleep, exactly like the kernel futex path.
func (e *Engine) Wake(t *Thread, when Cycles) {
	if t.now < when {
		t.now = when
	}
	if tr := e.Tracer; tr != nil {
		tr.Emit(trace.Event{Cycle: int64(t.now), Kind: trace.KindThreadWake,
			Tid: int32(t.ID), Node: -1, Name: t.Name})
	}
	if t.state == stateBlocked {
		t.state = stateRunnable
	} else if t.state != stateDone {
		t.wakePending = true
	}
}

// Run drives the simulation until every thread has finished. It returns the
// first error produced by a panicking thread, or a deadlock error if all
// remaining threads are blocked.
func (e *Engine) Run() error {
	if e.running {
		return fmt.Errorf("sim: engine already running")
	}
	e.running = true
	defer func() { e.running = false }()

	for {
		next := e.pickNext()
		if next == nil {
			if e.allDone() {
				return e.firstErr()
			}
			return e.deadlockErr()
		}
		if tr := e.Tracer; tr != nil && next.ID != e.lastRun {
			tr.Emit(trace.Event{Cycle: int64(next.now), Kind: trace.KindThreadSwitch,
				Tid: int32(next.ID), Node: -1, Name: next.Name})
		}
		e.lastRun = next.ID
		c0 := next.now
		next.resume <- struct{}{}
		<-next.yield
		e.Stats.SerialSegments++
		e.Stats.SerialCycles += next.now - c0
		if next.err != nil {
			return next.err
		}
	}
}

// pickNext returns the runnable thread with the smallest local clock,
// breaking ties by thread ID for determinism.
func (e *Engine) pickNext() *Thread {
	var best *Thread
	for _, t := range e.threads {
		if t.state != stateRunnable {
			continue
		}
		if best == nil || t.now < best.now || (t.now == best.now && t.ID < best.ID) {
			best = t
		}
	}
	return best
}

func (e *Engine) allDone() bool {
	for _, t := range e.threads {
		if t.state != stateDone {
			return false
		}
	}
	return true
}

func (e *Engine) firstErr() error {
	for _, t := range e.threads {
		if t.err != nil {
			return t.err
		}
	}
	return nil
}

func (e *Engine) deadlockErr() error {
	var stuck []string
	for _, t := range e.threads {
		if t.state == stateBlocked {
			stuck = append(stuck, fmt.Sprintf("%s(%s)", t.Name, t.blockReason))
		}
	}
	sort.Strings(stuck)
	return fmt.Errorf("sim: deadlock, blocked threads: %v", stuck)
}

// MaxTime returns the largest local clock across all threads; with the
// engine idle this is the simulation's end time.
func (e *Engine) MaxTime() Cycles {
	var m Cycles
	for _, t := range e.threads {
		if t.now > m {
			m = t.now
		}
	}
	return m
}
