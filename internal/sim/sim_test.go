package sim

import (
	"testing"
	"testing/quick"
)

func TestClockConversions(t *testing.T) {
	k := Clock{Hz: 2_000_000_000} // 2 GHz
	if got := k.Micros(2000); got != 1 {
		t.Errorf("Micros(2000) = %v, want 1", got)
	}
	if got := k.FromMicros(1); got != 2000 {
		t.Errorf("FromMicros(1) = %v, want 2000", got)
	}
	if got := k.Nanos(2); got != 1 {
		t.Errorf("Nanos(2) = %v, want 1", got)
	}
	if got := k.Millis(2_000_000); got != 1 {
		t.Errorf("Millis(2e6) = %v, want 1", got)
	}
	if got := k.FromNanos(1000); got != 2000 {
		t.Errorf("FromNanos(1000) = %v, want 2000", got)
	}
}

func TestClockRoundTrip(t *testing.T) {
	k := Clock{Hz: 2_100_000_000}
	f := func(us uint16) bool {
		c := k.FromMicros(float64(us))
		back := k.Micros(c)
		diff := back - float64(us)
		return diff < 0.01 && diff > -0.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEngineSingleThread(t *testing.T) {
	e := NewEngine()
	var done bool
	e.Spawn("t", 0, func(th *Thread) {
		th.Advance(100)
		th.Advance(50)
		if th.Now() != 150 {
			t.Errorf("Now = %d, want 150", th.Now())
		}
		done = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("thread body did not run")
	}
	if e.MaxTime() != 150 {
		t.Errorf("MaxTime = %d, want 150", e.MaxTime())
	}
}

func TestEngineLowestClockFirst(t *testing.T) {
	// Two threads that interleave via YieldPoints must execute in
	// simulated-time order regardless of spawn order.
	e := NewEngine()
	e.Quantum = 1
	var order []string
	e.Spawn("slow", 0, func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Advance(100)
			order = append(order, "slow")
		}
	})
	e.Spawn("fast", 0, func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Advance(10)
			order = append(order, "fast")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Advance yields before returning, so each append runs once the thread
	// is rescheduled: fast's three steps (clock 10,20,30) all complete
	// before slow's first step (clock 100) is rescheduled.
	want := []string{"fast", "fast", "fast", "slow", "slow", "slow"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		e.Quantum = 7
		var trace []int
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn("t", Cycles(i), func(th *Thread) {
				for j := 0; j < 5; j++ {
					th.Advance(Cycles(3 + i))
					trace = append(trace, i*10+j)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a, b)
		}
	}
}

func TestEngineBlockWake(t *testing.T) {
	e := NewEngine()
	var consumer *Thread
	var got Cycles
	ready := false
	consumer = e.Spawn("consumer", 0, func(th *Thread) {
		th.Advance(10)
		for !ready {
			th.Block("wait-for-producer")
		}
		got = th.Now()
	})
	e.Spawn("producer", 0, func(th *Thread) {
		th.Advance(500)
		ready = true
		e.Wake(consumer, th.Now()+25)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 525 {
		t.Errorf("consumer woke at %d, want 525 (producer 500 + wake latency 25)", got)
	}
}

func TestEngineWakeDoesNotRewindClock(t *testing.T) {
	e := NewEngine()
	var th1 *Thread
	th1 = e.Spawn("sleeper", 0, func(th *Thread) {
		th.Advance(1000)
		th.Block("nap")
	})
	e.Spawn("waker", 0, func(th *Thread) {
		th.Advance(10)
		e.Wake(th1, 5) // earlier than sleeper's clock; must not rewind
	})
	// sleeper blocks after waker has already woken it: Wake on a runnable
	// thread is absorbed, so we need a second waker after the block.
	e.Spawn("waker2", 0, func(th *Thread) {
		th.Advance(2000)
		e.Wake(th1, 100)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if th1.Now() < 1000 {
		t.Errorf("sleeper clock rewound to %d", th1.Now())
	}
}

func TestEngineDeadlockDetection(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck", 0, func(th *Thread) {
		th.Block("forever")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestEnginePanicPropagation(t *testing.T) {
	e := NewEngine()
	e.Spawn("boom", 0, func(th *Thread) {
		panic("kaboom")
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected panic to surface as error")
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", 0, func(th *Thread) {
		th.Advance(-1)
	})
	if err := e.Run(); err == nil {
		t.Fatal("negative Advance must be rejected")
	}
}

func TestAdvanceTo(t *testing.T) {
	e := NewEngine()
	e.Spawn("t", 0, func(th *Thread) {
		th.Advance(100)
		th.AdvanceTo(50) // no-op
		if th.Now() != 100 {
			t.Errorf("AdvanceTo rewound clock to %d", th.Now())
		}
		th.AdvanceTo(300)
		if th.Now() != 300 {
			t.Errorf("AdvanceTo(300) left clock at %d", th.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seeded RNGs diverged")
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced stuck zero stream")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(99)
	n := 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if mean > 0.05 || mean < -0.05 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue()
	var fired []int
	q.Schedule(30, func() { fired = append(fired, 30) })
	q.Schedule(10, func() { fired = append(fired, 10) })
	q.Schedule(20, func() { fired = append(fired, 20) })
	q.Schedule(10, func() { fired = append(fired, 11) }) // same time, later insert

	if at, ok := q.PeekTime(); !ok || at != 10 {
		t.Fatalf("PeekTime = %d,%v want 10,true", at, ok)
	}
	n := q.RunDue(15)
	if n != 2 {
		t.Fatalf("RunDue(15) fired %d, want 2", n)
	}
	q.RunDue(100)
	want := []int{10, 11, 20, 30}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired order %v, want %v", fired, want)
		}
	}
	if q.Len() != 0 {
		t.Errorf("queue not drained: %d left", q.Len())
	}
}

func TestEventQueueEmptyPeek(t *testing.T) {
	q := NewEventQueue()
	if _, ok := q.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue returned ok")
	}
	if n := q.RunDue(1000); n != 0 {
		t.Fatalf("RunDue on empty queue fired %d", n)
	}
}
