package sim

// EngineStats counts how a driver spent its grants. All counters are
// host-side observability state: simulated code never reads them, so
// collecting them cannot perturb the schedule. They are deterministic —
// every segment boundary is a pure function of simulated clocks — but they
// are *driver-dependent* (the sequential driver reports everything as
// serial segments and no phases), so they must never leak into experiment
// Metrics() or rendered output, which the engine-differential battery
// requires to be byte-identical across drivers.
type EngineStats struct {
	// SerialSegments counts segments granted under the global token out of
	// necessity: parked cross-domain continuations, global-domain threads,
	// and threads inside an open BeginSerial section.
	SerialSegments int64
	// SoloSegments counts segments granted serially because at most one
	// clock domain had runnable work — there was no host parallelism to
	// lose, so the driver skipped the domain-phase machinery (and its park
	// hand-offs) entirely.
	SoloSegments int64
	// DomainSegments counts segments granted inside domain-parallel phases.
	DomainSegments int64
	// Parks counts CrossDomain parks: a domain-phase thread hitting a
	// cross-domain effect point and handing off to the serial phase.
	Parks int64
	// Phases counts domain-parallel phases opened.
	Phases int64
	// PhaseDomains sums the domains run across all phases, so
	// PhaseDomains/Phases is the mean phase width (the host-parallelism
	// actually available, as opposed to configured).
	PhaseDomains int64
	// MaxPhaseWidth is the most domains ever run concurrently in one phase.
	MaxPhaseWidth int64
	// SerialCycles, SoloCycles and DomainCycles attribute simulated cycles
	// advanced to the grant kind they were advanced under. DomainCycles is
	// the work that ran (or could have run) concurrently on host cores.
	SerialCycles Cycles
	SoloCycles   Cycles
	DomainCycles Cycles
}

// Handoffs returns the total engine→thread grants (each costs one resume /
// yield channel round trip on the host).
func (s EngineStats) Handoffs() int64 {
	return s.SerialSegments + s.SoloSegments + s.DomainSegments
}

// Add accumulates o into s (cluster experiments aggregate one engine per
// cell into a per-row total).
func (s *EngineStats) Add(o EngineStats) {
	s.SerialSegments += o.SerialSegments
	s.SoloSegments += o.SoloSegments
	s.DomainSegments += o.DomainSegments
	s.Parks += o.Parks
	s.Phases += o.Phases
	s.PhaseDomains += o.PhaseDomains
	if o.MaxPhaseWidth > s.MaxPhaseWidth {
		s.MaxPhaseWidth = o.MaxPhaseWidth
	}
	s.SerialCycles += o.SerialCycles
	s.SoloCycles += o.SoloCycles
	s.DomainCycles += o.DomainCycles
}

// Map flattens the counters for machine-readable export (stramash-bench
// -json writes keys in sorted order).
func (s EngineStats) Map() map[string]int64 {
	return map[string]int64{
		"serial_segments": s.SerialSegments,
		"solo_segments":   s.SoloSegments,
		"domain_segments": s.DomainSegments,
		"parks":           s.Parks,
		"phases":          s.Phases,
		"phase_domains":   s.PhaseDomains,
		"max_phase_width": s.MaxPhaseWidth,
		"serial_cycles":   int64(s.SerialCycles),
		"solo_cycles":     int64(s.SoloCycles),
		"domain_cycles":   int64(s.DomainCycles),
		"handoffs":        s.Handoffs(),
	}
}
