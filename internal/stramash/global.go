package stramash

import (
	"fmt"
	"sort"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/pgtable"
	"repro/internal/sim"
)

// GlobalConfig parameterizes the global memory allocator (§6.3).
type GlobalConfig struct {
	// BlockSize is the slice granularity; the paper's allocator supports
	// 32 MB to 4 GB and the Table 4 experiment uses 256 MB slices.
	BlockSize uint64
	// PressureThreshold triggers a block request when used/total passes it.
	PressureThreshold float64
	// OfflinePerPage / OnlinePerPage are the per-page bookkeeping costs of
	// the hot-remove (evacuate + isolate) and hot-add paths, per node.
	// Calibrated so the Table 4 magnitudes land in the paper's ballpark
	// (x86 offline ≈ 235 ns/page, online ≈ 65 ns/page on Qemu-x86).
	OfflinePerPage [2]sim.Cycles
	OnlinePerPage  [2]sim.Cycles
}

// DefaultGlobalConfig returns the evaluation configuration.
func DefaultGlobalConfig() GlobalConfig {
	return GlobalConfig{
		BlockSize:         256 << 20,
		PressureThreshold: 0.70,
		OfflinePerPage:    [2]sim.Cycles{420, 110},
		OnlinePerPage:     [2]sim.Cycles{100, 130},
	}
}

// Block is one hot-pluggable memory slice.
type Block struct {
	Start mem.PhysAddr
	Size  uint64
	// Owner is the kernel currently holding the block, or mem.NodeNone.
	Owner mem.NodeID
}

// GlobalAllocator manages the pool of shared memory blocks handed to
// kernel instances on demand and reclaimed under pressure (§6.3). It
// extends the memory hot-plug idea: hot-remove evacuates a block and then
// isolates its pages rather than requiring an unplug.
type GlobalAllocator struct {
	Ctx *kernel.Context
	Cfg GlobalConfig

	blocks []*Block
	// frameUse lets eviction find and rewrite the mapping of a movable
	// user frame. The OS registers frames as it maps them.
	frameUse map[mem.PhysAddr]frameUse
}

type frameUse struct {
	proc *kernel.Process
	va   pgtable.VirtAddr
}

// NewGlobalAllocator builds the allocator and carves the layout's shared
// (unowned) regions into blocks. Machines without a shared pool start with
// no blocks; AddPool can donate ranges explicitly.
func NewGlobalAllocator(ctx *kernel.Context, cfg GlobalConfig) *GlobalAllocator {
	g := &GlobalAllocator{Ctx: ctx, Cfg: cfg, frameUse: make(map[mem.PhysAddr]frameUse)}
	for _, r := range ctx.Plat.Layout().SharedRegions() {
		g.AddPool(r.Start, r.Size)
	}
	return g
}

// AddPool carves [start, start+size) into BlockSize blocks owned by nobody.
func (g *GlobalAllocator) AddPool(start mem.PhysAddr, size uint64) {
	for off := uint64(0); off+g.Cfg.BlockSize <= size; off += g.Cfg.BlockSize {
		g.blocks = append(g.blocks, &Block{
			Start: start + mem.PhysAddr(off),
			Size:  g.Cfg.BlockSize,
			Owner: mem.NodeNone,
		})
	}
	sort.Slice(g.blocks, func(i, j int) bool { return g.blocks[i].Start < g.blocks[j].Start })
}

// BlockAt returns the i-th block for direct online/offline control (the
// Table 4 experiment drives slices explicitly).
func (g *GlobalAllocator) BlockAt(i int) *Block { return g.blocks[i] }

// Blocks returns a snapshot of the block table.
func (g *GlobalAllocator) Blocks() []Block {
	out := make([]Block, len(g.blocks))
	for i, b := range g.blocks {
		out[i] = *b
	}
	return out
}

// FreeBlocks counts unassigned blocks.
func (g *GlobalAllocator) FreeBlocks() int {
	n := 0
	for _, b := range g.blocks {
		if b.Owner == mem.NodeNone {
			n++
		}
	}
	return n
}

// RegisterFrame records that frame backs (proc, va); eviction uses this to
// move the page. Unregistered frames pin their block.
func (g *GlobalAllocator) RegisterFrame(frame mem.PhysAddr, proc *kernel.Process, va pgtable.VirtAddr) {
	g.frameUse[frame] = frameUse{proc: proc, va: va}
}

// UnregisterFrame removes the record.
func (g *GlobalAllocator) UnregisterFrame(frame mem.PhysAddr) {
	delete(g.frameUse, frame)
}

// Online hands a block to node's kernel: the range is added to its buddy
// and every page's struct-page is initialized (the per-page cost that
// Table 4's "Online" column measures).
func (g *GlobalAllocator) Online(pt *hw.Port, node mem.NodeID, b *Block) error {
	if b.Owner != mem.NodeNone {
		return fmt.Errorf("stramash: block %#x already owned by %v", b.Start, b.Owner)
	}
	k := g.Ctx.Kernel(node)
	pages := int64(b.Size / mem.PageSize)
	memmap := g.memmapBase(node)
	for p := int64(0); p < pages; p++ {
		// Initialize the struct page: one write into the memmap array plus
		// fixed bookkeeping work.
		if p%8 == 0 {
			pt.Write64(memmap+mem.PhysAddr((uint64(b.Start)>>mem.PageShift+uint64(p))%0x10000*8), 0)
		}
		pt.T.Advance(g.Cfg.OnlinePerPage[node])
	}
	if err := k.Alloc.AddRange(b.Start, b.Size); err != nil {
		return err
	}
	b.Owner = node
	return nil
}

// Offline reclaims a block from its owner: live pages are evacuated to
// other memory of the same kernel (page contents copied, page tables
// rewritten), then every page is isolated and the range removed. This is
// the "Offline" column of Table 4.
func (g *GlobalAllocator) Offline(pt *hw.Port, b *Block) error {
	if b.Owner == mem.NodeNone {
		return fmt.Errorf("stramash: block %#x not owned", b.Start)
	}
	node := b.Owner
	k := g.Ctx.Kernel(node)
	end := b.Start + mem.PhysAddr(b.Size)

	// Evacuation: move every live allocation out of the block.
	for {
		live := k.Alloc.AllocatedIn(b.Start, end)
		if len(live) == 0 {
			break
		}
		for _, old := range live {
			use, movable := g.frameUse[old]
			if !movable {
				return fmt.Errorf("stramash: block %#x has unmovable page %#x", b.Start, old)
			}
			// Allocate a replacement outside the draining block; pages that
			// land inside are parked and freed afterwards.
			var parked []mem.PhysAddr
			var nw mem.PhysAddr
			for {
				p, err := k.Alloc.AllocPage()
				if err != nil {
					for _, q := range parked {
						k.Alloc.Free(q)
					}
					return fmt.Errorf("stramash: evacuating %#x: %w", old, err)
				}
				if p < b.Start || p >= end {
					nw = p
					break
				}
				parked = append(parked, p)
			}
			for _, q := range parked {
				if err := k.Alloc.Free(q); err != nil {
					return err
				}
			}
			pt.CopyPage(nw, old)
			// Rewrite every kernel's mapping of the page.
			for n := 0; n < 2; n++ {
				nn := mem.NodeID(n)
				meta := use.proc.MetaIfAny(use.va)
				if meta == nil || !meta.Valid[nn] || meta.Frames[nn] != old {
					continue
				}
				if _, err := kernel.MapFrame(g.Ctx, pt, use.proc, nn, use.va, nw, true); err != nil {
					return err
				}
			}
			if err := k.Alloc.Free(old); err != nil {
				return err
			}
			g.frameUse[nw] = use
			delete(g.frameUse, old)
		}
	}

	// Isolation: per-page offline bookkeeping.
	pages := int64(b.Size / mem.PageSize)
	memmap := g.memmapBase(node)
	for p := int64(0); p < pages; p++ {
		if p%8 == 0 {
			pt.Read64(memmap + mem.PhysAddr((uint64(b.Start)>>mem.PageShift+uint64(p))%0x10000*8))
		}
		pt.T.Advance(g.Cfg.OfflinePerPage[node])
	}
	if err := k.Alloc.RemoveRange(b.Start, b.Size); err != nil {
		return err
	}
	b.Owner = mem.NodeNone
	return nil
}

// memmapBase is where node's struct-page array lives (in its reserved low
// memory).
func (g *GlobalAllocator) memmapBase(node mem.NodeID) mem.PhysAddr {
	regions := g.Ctx.Plat.Layout().OwnedRegions(node)
	return regions[0].Start + 0x100000
}

// RequestBlock assigns a block to node: a free block if any, otherwise one
// evicted from the other kernel — but only while the victim's pressure
// stays below the requester's (§6.3's balancing rule).
func (g *GlobalAllocator) RequestBlock(pt *hw.Port, node mem.NodeID) error {
	for _, b := range g.blocks {
		if b.Owner == mem.NodeNone {
			return g.Online(pt, node, b)
		}
	}
	other := kernel.Other(node)
	me := g.Ctx.Kernel(node).Alloc
	them := g.Ctx.Kernel(other).Alloc
	if them.Pressure() >= me.Pressure() {
		return fmt.Errorf("stramash: no free block and peer pressure %.2f >= ours %.2f", them.Pressure(), me.Pressure())
	}
	for _, b := range g.blocks {
		if b.Owner != other {
			continue
		}
		if err := g.Offline(pt, b); err != nil {
			continue // unmovable pages: try another block
		}
		return g.Online(pt, node, b)
	}
	return fmt.Errorf("stramash: no evictable block for %v", node)
}
