package stramash

import (
	"fmt"
	"sort"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/pgtable"
)

// PackStats reports a packing pass.
type PackStats struct {
	PagesMoved   int
	PagesInPlace int
	// Extent is the contiguous physical range now holding the pages.
	Extent mem.PhysAddr
	Bytes  uint64
}

// PackProcessPages implements §5's "pack data structures' data in
// contiguous physical memory — so it is simple to categorize and share
// between kernels" (and §6's note that the prototype implements the
// packing, including moving pages to reorganize data): every page of proc
// currently backed by node-owned frames is relocated into one contiguous,
// naturally-aligned physical extent. Hardware range protection (MPU/IOMMU
// windows) can then cover the shared state with a single descriptor.
//
// Pages are moved with the same copy+remap machinery the global
// allocator's evacuation uses; both kernels' mappings are rewritten, so
// the move is transparent to the running application.
func (o *OS) PackProcessPages(pt *hw.Port, proc *kernel.Process, node mem.NodeID) (PackStats, error) {
	var st PackStats
	k := o.Ctx.Kernel(node)

	// Collect the movable pages (frame owned by node, registered with the
	// global allocator's reverse map through the fault paths).
	type entry struct {
		va    pgtable.VirtAddr
		frame mem.PhysAddr
	}
	var pages []entry
	for va, m := range proc.Pages {
		for n := 0; n < 2; n++ {
			if m.Valid[n] && m.FrameOwner[n] == node && k.Alloc.IsAllocated(m.Frames[n]) {
				pages = append(pages, entry{va: va, frame: m.Frames[n]})
				break
			}
		}
	}
	if len(pages) == 0 {
		return st, nil
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].va < pages[j].va })

	// Allocate one contiguous extent large enough for all of them.
	order := 0
	for (1 << order) < len(pages) {
		order++
	}
	if order > kernel.MaxOrder {
		return st, fmt.Errorf("stramash: %d pages exceed the largest contiguous block", len(pages))
	}
	extent, err := k.Alloc.AllocPages(order)
	if err != nil {
		return st, fmt.Errorf("stramash: allocating pack extent: %w", err)
	}
	st.Extent = extent
	st.Bytes = uint64(len(pages)) * mem.PageSize

	for i, pg := range pages {
		dst := extent + mem.PhysAddr(i)*mem.PageSize
		if pg.frame == dst {
			st.PagesInPlace++
			continue
		}
		pt.CopyPage(dst, pg.frame)
		meta := proc.MetaIfAny(pg.va)
		for n := 0; n < 2; n++ {
			nn := mem.NodeID(n)
			if meta == nil || !meta.Valid[nn] || meta.Frames[nn] != pg.frame {
				continue
			}
			if _, err := kernel.MapFrame(o.Ctx, pt, proc, nn, pg.va, dst, true); err != nil {
				return st, err
			}
			meta.FrameOwner[nn] = node
		}
		o.Global.UnregisterFrame(pg.frame)
		o.Global.RegisterFrame(dst, proc, pg.va)
		if err := k.Alloc.Free(pg.frame); err != nil {
			return st, err
		}
		st.PagesMoved++
	}
	return st, nil
}

// ContiguousExtentOf reports whether every node-owned page of proc sits in
// one contiguous physical run, returning its bounds (used by tests and by
// callers setting up hardware range protection).
func ContiguousExtentOf(proc *kernel.Process, node mem.NodeID) (lo, hi mem.PhysAddr, contiguous bool) {
	var frames []mem.PhysAddr
	for _, m := range proc.Pages {
		for n := 0; n < 2; n++ {
			if m.Valid[n] && m.FrameOwner[n] == node {
				frames = append(frames, m.Frames[n])
				break
			}
		}
	}
	if len(frames) == 0 {
		return 0, 0, true
	}
	sort.Slice(frames, func(i, j int) bool { return frames[i] < frames[j] })
	for i := 1; i < len(frames); i++ {
		if frames[i] != frames[i-1]+mem.PageSize {
			return frames[0], frames[len(frames)-1] + mem.PageSize, false
		}
	}
	return frames[0], frames[len(frames)-1] + mem.PageSize, true
}
