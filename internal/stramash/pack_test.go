package stramash

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/pgtable"
	"repro/internal/sim"
)

func TestPackProcessPages(t *testing.T) {
	ctx, os := testSystem(t, mem.Shared)
	var proc *kernel.Process
	values := map[pgtable.VirtAddr]uint64{}

	runTask(t, ctx, os, mem.NodeX86, func(task *kernel.Task) error {
		proc = task.Proc
		base, err := task.Proc.Mmap(64*mem.PageSize, kernel.VMARead|kernel.VMAWrite, "d")
		if err != nil {
			return err
		}
		// Touch pages in a scattered order (interleaved with other
		// allocations) so the frames are NOT naturally contiguous.
		other, err := task.Proc.Mmap(64*mem.PageSize, kernel.VMARead|kernel.VMAWrite, "noise")
		if err != nil {
			return err
		}
		for i := 0; i < 24; i++ {
			va := base + pgtable.VirtAddr(i*mem.PageSize)
			if err := task.Store(va, 8, uint64(0xAB00+i)); err != nil {
				return err
			}
			values[va] = uint64(0xAB00 + i)
			if i%3 == 0 {
				if err := task.Store(other+pgtable.VirtAddr(i*mem.PageSize), 8, 1); err != nil {
					return err
				}
			}
		}
		return nil
	})

	if _, _, contig := ContiguousExtentOf(proc, mem.NodeX86); contig {
		t.Fatal("frames unexpectedly contiguous before packing (test setup broken)")
	}

	// Pack, then verify placement and content.
	var st PackStats
	ctx.Plat.Engine.Spawn("pack", 0, func(th *sim.Thread) {
		pt := ctx.Plat.NewPort(mem.NodeX86, 0, th)
		var err error
		st, err = os.PackProcessPages(pt, proc, mem.NodeX86)
		if err != nil {
			t.Error(err)
		}
	})
	if err := ctx.Plat.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	if st.PagesMoved == 0 {
		t.Error("packing moved no pages")
	}
	lo, hi, contig := ContiguousExtentOf(proc, mem.NodeX86)
	if !contig {
		t.Fatalf("frames not contiguous after packing: [%#x, %#x)", lo, hi)
	}

	// Contents survive the relocation and remain visible through the
	// page tables of the running process.
	ctx.Plat.Engine.Spawn("verify", 0, func(th *sim.Thread) {
		task := kernel.NewTask("verify", proc, os, ctx, th)
		for va, want := range values {
			got, err := task.Load(va, 8)
			if err != nil {
				t.Error(err)
				return
			}
			if got != want {
				t.Errorf("after packing, [%#x] = %#x, want %#x", va, got, want)
				return
			}
		}
	})
	if err := ctx.Plat.Engine.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPackEmptyProcess(t *testing.T) {
	ctx, os := testSystem(t, mem.Shared)
	var proc *kernel.Process
	ctx.Plat.Engine.Spawn("setup", 0, func(th *sim.Thread) {
		pt := ctx.Plat.NewPort(mem.NodeX86, 0, th)
		proc, _ = os.CreateProcess(pt, mem.NodeX86)
	})
	if err := ctx.Plat.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	ctx.Plat.Engine.Spawn("pack", 0, func(th *sim.Thread) {
		pt := ctx.Plat.NewPort(mem.NodeX86, 0, th)
		st, err := os.PackProcessPages(pt, proc, mem.NodeX86)
		if err != nil {
			t.Error(err)
		}
		if st.PagesMoved != 0 || st.Bytes != 0 {
			t.Errorf("empty process packed: %+v", st)
		}
	})
	if err := ctx.Plat.Engine.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPackKeepsBothNodesMappingsCoherent(t *testing.T) {
	ctx, os := testSystem(t, mem.Shared)
	var proc *kernel.Process
	var base pgtable.VirtAddr
	runTask(t, ctx, os, mem.NodeX86, func(task *kernel.Task) error {
		proc = task.Proc
		var err error
		base, err = task.Proc.Mmap(16*mem.PageSize, kernel.VMARead|kernel.VMAWrite, "d")
		if err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			if err := task.Store(base+pgtable.VirtAddr(i*mem.PageSize), 8, uint64(i+100)); err != nil {
				return err
			}
		}
		// Map the pages on the remote side too (shared frames).
		if err := task.Migrate(mem.NodeArm); err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			if _, err := task.Load(base+pgtable.VirtAddr(i*mem.PageSize), 8); err != nil {
				return err
			}
		}
		return nil
	})

	ctx.Plat.Engine.Spawn("pack", 0, func(th *sim.Thread) {
		pt := ctx.Plat.NewPort(mem.NodeX86, 0, th)
		if _, err := os.PackProcessPages(pt, proc, mem.NodeX86); err != nil {
			t.Error(err)
		}
	})
	if err := ctx.Plat.Engine.Run(); err != nil {
		t.Fatal(err)
	}

	// Both page tables must now reference the same (packed) frames.
	for i := 0; i < 8; i++ {
		va := base + pgtable.VirtAddr(i*mem.PageSize)
		m := proc.MetaIfAny(va)
		if m == nil || !m.Valid[0] || !m.Valid[1] {
			t.Fatalf("page %d not mapped on both nodes after packing", i)
		}
		if m.Frames[0] != m.Frames[1] {
			t.Errorf("page %d frames diverged after packing: %#x vs %#x", i, m.Frames[0], m.Frames[1])
		}
		// And the in-table PTEs agree with the metadata.
		phys := ctx.Plat.Phys
		for n := 0; n < 2; n++ {
			pfn, _, ok := proc.Tables[n].Walk(phys, va)
			if !ok || mem.PhysAddr(pfn<<mem.PageShift) != m.Frames[n] {
				t.Errorf("page %d node %d PTE stale after packing", i, n)
			}
		}
	}
}
