package stramash

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/interconnect"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/pgtable"
	"repro/internal/sim"
)

// tinySystem boots a context whose x86 kernel has very little initial
// memory, so allocation pressure rises quickly.
func tinySystem(t *testing.T) (*kernel.Context, *OS) {
	t.Helper()
	plat := hw.NewPlatform(hw.DefaultConfig(mem.Shared))
	x86k, err := kernel.Boot(plat, mem.NodeX86, pgtable.X86Format{},
		kernel.BootConfig{ReserveLow: 64 << 20, MaxInitial: 4 << 20}) // 4 MB usable
	if err != nil {
		t.Fatal(err)
	}
	armk, err := kernel.Boot(plat, mem.NodeArm, pgtable.Arm64Format{},
		kernel.BootConfig{ReserveLow: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &kernel.Context{Plat: plat, Kernels: [2]*kernel.Kernel{x86k, armk}}
	var os *OS
	plat.Engine.Spawn("boot", 0, func(th *sim.Thread) {
		pt := plat.NewPort(mem.NodeX86, 0, th)
		base := plat.Layout().SharedRegions()[0].Start
		msgr := interconnect.NewMessenger(interconnect.DefaultConfig(interconnect.SHM, base+(512<<20)), plat, pt)
		os = New(ctx, msgr)
		// Small blocks so a request can be satisfied from the pool quickly.
		cfg := DefaultGlobalConfig()
		cfg.BlockSize = 32 << 20
		os.Global = NewGlobalAllocator(ctx, cfg)
	})
	if err := plat.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	return ctx, os
}

func TestPressureTriggersGlobalBlockRequest(t *testing.T) {
	ctx, os := tinySystem(t)
	beforeBlocks := os.Global.FreeBlocks()
	beforeTotal := ctx.Kernels[0].Alloc.TotalPages()

	// Allocate well past 70% of the tiny kernel's 4 MB: the fault path
	// must pull a 32 MB block from the global pool (§6.3).
	runTask(t, ctx, os, mem.NodeX86, func(task *kernel.Task) error {
		base, err := task.Proc.Mmap(8<<20, kernel.VMARead|kernel.VMAWrite, "big")
		if err != nil {
			return err
		}
		for off := 0; off < 8<<20; off += mem.PageSize {
			if err := task.Store(base+pgtable.VirtAddr(off), 8, 1); err != nil {
				return err
			}
		}
		return nil
	})

	if os.Stats.GlobalBlockMoves == 0 {
		t.Error("memory pressure did not trigger a global block request")
	}
	if os.Global.FreeBlocks() >= beforeBlocks {
		t.Error("no block left the global pool")
	}
	after := ctx.Kernels[0].Alloc.TotalPages()
	if after <= beforeTotal {
		t.Errorf("kernel memory did not grow: %d -> %d pages", beforeTotal, after)
	}
	// The onlined block belongs to the CXL pool: subsequent x86 accesses
	// to it are remote, which is precisely the §6.3 trade-off.
	pool := ctx.Plat.Layout().SharedRegions()[0]
	found := false
	for _, b := range os.Global.Blocks() {
		if b.Owner == mem.NodeX86 && pool.Contains(b.Start) {
			found = true
		}
	}
	if !found {
		t.Error("no pool block recorded as x86-owned")
	}
}

func TestEvictionRebalancesBlocksUnderPressure(t *testing.T) {
	// §6.3: with the pool empty, a pressured kernel evicts blocks from the
	// other kernel while the victim's pressure stays below its own.
	ctx, os := tinySystem(t)
	// Drain the pool by onlining everything to arm first; arm's blocks are
	// all free, so they are evictable.
	ctx.Plat.Engine.Spawn("drain", 0, func(th *sim.Thread) {
		pt := ctx.Plat.NewPort(mem.NodeArm, 0, th)
		for i := 0; ; i++ {
			if err := os.Global.RequestBlock(pt, mem.NodeArm); err != nil {
				break
			}
			if i > 1000 {
				t.Error("pool never drained")
				break
			}
		}
	})
	if err := ctx.Plat.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	if os.Global.FreeBlocks() != 0 {
		t.Fatalf("pool not drained: %d free", os.Global.FreeBlocks())
	}
	armBlocksBefore := 0
	for _, b := range os.Global.Blocks() {
		if b.Owner == mem.NodeArm {
			armBlocksBefore++
		}
	}

	// The pressured x86 kernel allocates beyond its own memory: blocks
	// must migrate from arm to x86.
	runTask(t, ctx, os, mem.NodeX86, func(task *kernel.Task) error {
		base, err := task.Proc.Mmap(8<<20, kernel.VMARead|kernel.VMAWrite, "big")
		if err != nil {
			return err
		}
		for off := 0; off < 8<<20; off += mem.PageSize {
			if err := task.Store(base+pgtable.VirtAddr(off), 8, 1); err != nil {
				return err
			}
		}
		return nil
	})
	x86Blocks, armBlocks := 0, 0
	for _, b := range os.Global.Blocks() {
		switch b.Owner {
		case mem.NodeX86:
			x86Blocks++
		case mem.NodeArm:
			armBlocks++
		}
	}
	if x86Blocks == 0 {
		t.Error("no block migrated to the pressured kernel")
	}
	if armBlocks >= armBlocksBefore {
		t.Errorf("arm kept all %d blocks", armBlocks)
	}
}

func TestOOMSurfacesAsError(t *testing.T) {
	// With no global blocks at all, exhausting the kernel's own memory
	// must surface as a clean error through the fault path, not a panic.
	ctx, os := tinySystem(t)
	empty := DefaultGlobalConfig()
	empty.BlockSize = 16 << 30 // larger than the pool: zero blocks carved
	os.Global = NewGlobalAllocator(ctx, empty)
	if os.Global.FreeBlocks() != 0 {
		t.Fatalf("expected an empty global pool, got %d blocks", os.Global.FreeBlocks())
	}

	var proc *kernel.Process
	ctx.Plat.Engine.Spawn("setup", 0, func(th *sim.Thread) {
		pt := ctx.Plat.NewPort(mem.NodeX86, 0, th)
		proc, _ = os.CreateProcess(pt, mem.NodeX86)
	})
	if err := ctx.Plat.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	var gotErr error
	ctx.Plat.Engine.Spawn("oom", 0, func(th *sim.Thread) {
		task := kernel.NewTask("oom", proc, os, ctx, th)
		base, err := proc.Mmap(16<<20, kernel.VMARead|kernel.VMAWrite, "huge")
		if err != nil {
			gotErr = err
			return
		}
		for off := 0; off < 16<<20; off += mem.PageSize {
			if err := task.Store(base+pgtable.VirtAddr(off), 8, 1); err != nil {
				gotErr = err
				return
			}
		}
	})
	if err := ctx.Plat.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	if gotErr == nil {
		t.Fatal("allocating past all physical memory did not fail")
	}
}
