// Package stramash implements the paper's primary contribution: the
// fused-kernel OS personality. Kernel instances coordinate through
// cache-coherent shared memory under the shared-mostly principle (§5):
//
//   - Page faults taken by a migrated task are resolved locally — the
//     remote kernel allocates anonymous pages from its own memory, inserts
//     them into its own page table, and writes the equivalent entry into
//     the origin kernel's page table in the origin ISA's format through the
//     software remote page-table walker (§6.4). No page replication, no
//     message round trips.
//   - VMA lookups for migrated tasks walk the origin kernel's VMA
//     structures directly over shared memory (software remote VMA walker).
//   - Concurrent page-table updates are serialized by a cross-ISA page
//     table lock (Stramash-PTL) built on the common CAS primitive (§6.5).
//   - Futexes are manipulated directly in shared memory by either kernel;
//     waking a thread on the other ISA costs a single cross-ISA IPI (§6.5).
//   - Physical memory moves between kernels in coarse blocks through the
//     global memory allocator (hotplug-style offline/evacuate/online, §6.3)
//     when a kernel's memory pressure passes 70%.
//   - Namespaces are fused: both kernels expose one namespace set (§6.6).
package stramash

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/interconnect"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/pgtable"
	"repro/internal/trace"
)

// Stats counts fused-kernel mechanism activity.
type Stats struct {
	RemotePTWrites    int64 // PTEs written into the other kernel's table
	RemoteVMAWalks    int64
	PTLAcquisitions   int64
	CrossISAIPIWakes  int64
	OriginHandled     int64 // faults forwarded to origin (missing upper tables)
	RemoteAllocations int64 // anonymous pages allocated by the remote kernel
	GlobalBlockMoves  int64
}

// OS is the fused-kernel personality.
type OS struct {
	Ctx  *kernel.Context
	Msgr *interconnect.Messenger
	// Global is the global memory allocator managing shared blocks.
	Global *GlobalAllocator
	// DisableRemoteAlloc turns off PTE-level remote anonymous allocation:
	// every remotely-taken fresh fault defers to the origin kernel via the
	// legacy path, as if the §6.4 mechanism were absent. Used by the
	// remote-allocation ablation.
	DisableRemoteAlloc bool

	// futexes per process; the control blocks live in the origin kernel's
	// memory but both kernels access them directly (fused).
	futexes map[int]*kernel.FutexTable
	// ctrlPages: one control page per process, at the origin — the single
	// authoritative copy both kernels touch (fused kernel VAS).
	ctrlPages map[int]mem.PhysAddr
	// ptl is the per-process cross-ISA page-table lock word address.
	ptl map[int]mem.PhysAddr

	Stats Stats
}

var _ kernel.OS = (*OS)(nil)

// New builds the fused-kernel personality.
func New(ctx *kernel.Context, msgr *interconnect.Messenger) *OS {
	o := &OS{
		Ctx:       ctx,
		Msgr:      msgr,
		futexes:   make(map[int]*kernel.FutexTable),
		ctrlPages: make(map[int]mem.PhysAddr),
		ptl:       make(map[int]mem.PhysAddr),
	}
	o.Global = NewGlobalAllocator(ctx, DefaultGlobalConfig())
	// Fused namespaces: both kernel instances share one set (§6.6).
	fused := ctx.Kernels[0].NS
	fused.FuseCPULists([]int{ctx.Plat.Cfg.Cache.Nodes[0].Cores, ctx.Plat.Cfg.Cache.Nodes[1].Cores},
		[]string{"x86_64", "aarch64"})
	ctx.Kernels[1].NS = fused
	return o
}

// Name implements kernel.OS.
func (o *OS) Name() string { return "stramash" }

// CreateProcess allocates the single fused control page and futex block.
func (o *OS) CreateProcess(pt *hw.Port, origin mem.NodeID) (*kernel.Process, error) {
	k := o.Ctx.Kernel(origin)
	proc := kernel.NewProcess(k.NextPID(), origin)
	ctrl, err := k.AllocZeroedPage(pt)
	if err != nil {
		return nil, err
	}
	o.ctrlPages[proc.PID] = ctrl
	fp, err := k.AllocZeroedPage(pt)
	if err != nil {
		return nil, err
	}
	o.futexes[proc.PID] = kernel.NewFutexTable(fp)
	// The Stramash-PTL lock word lives on the control page.
	o.ptl[proc.PID] = ctrl + 512
	return proc, nil
}

// emit sends a fused-mechanism event with the task's context filled in.
func (o *OS) emit(t *kernel.Task, kind trace.Kind, va pgtable.VirtAddr, arg int64) {
	if tr := o.Ctx.Plat.Tracer; tr != nil {
		tr.Emit(trace.Event{Cycle: int64(t.Th.Now()), Kind: kind,
			Node: int8(t.Node), Core: int16(t.Core), Tid: int32(t.Th.ID),
			VA: uint64(va), Arg: arg})
	}
}

// lockPTL acquires the cross-ISA page table lock (Stramash-PTL, §6.4).
func (o *OS) lockPTL(t *kernel.Task) {
	addr := o.ptl[t.Proc.PID]
	start := t.Th.Now()
	for i := 0; ; i++ {
		if _, ok := t.Port.CompareAndSwap64(addr, 0, uint64(t.Node)+1); ok {
			o.Stats.PTLAcquisitions++
			if tr := o.Ctx.Plat.Tracer; tr != nil {
				tr.Emit(trace.Event{Cycle: int64(start), Kind: trace.KindPTLAcquire,
					Node: int8(t.Node), Core: int16(t.Core), Tid: int32(t.Th.ID),
					PA: uint64(addr), Cost: int64(t.Th.Now() - start)})
			}
			return
		}
		t.Th.Advance(60)
		t.Th.YieldPoint()
		if i > 1_000_000 {
			panic("stramash: PTL livelock")
		}
	}
}

func (o *OS) unlockPTL(t *kernel.Task) {
	t.Port.Write64(o.ptl[t.Proc.PID], 0)
}

// allocNear allocates a zeroed page from node's kernel, triggering the
// global allocator when the node is under memory pressure (§6.3).
func (o *OS) allocNear(pt *hw.Port, node mem.NodeID) (mem.PhysAddr, error) {
	k := o.Ctx.Kernel(node)
	if k.Alloc.Pressure() > o.Global.Cfg.PressureThreshold {
		if err := o.Global.RequestBlock(pt, node); err == nil {
			o.Stats.GlobalBlockMoves++
			if tr := o.Ctx.Plat.Tracer; tr != nil {
				tr.Emit(trace.Event{Cycle: int64(pt.T.Now()), Kind: trace.KindGlobalBlockMove,
					Node: int8(node), Core: int16(pt.Core), Tid: int32(pt.T.ID), Arg: int64(node)})
			}
		}
		// A failed request is not fatal while free pages remain.
	}
	return k.AllocZeroedPage(pt)
}

// HandleFault implements kernel.OS — the Stramash page fault handler (§6.4).
func (o *OS) HandleFault(t *kernel.Task, va pgtable.VirtAddr, write bool) error {
	proc := t.Proc
	origin := proc.Origin
	node := t.Node

	// VMA lookup. A migrated task walks the origin's VMA structures
	// directly over cache-coherent shared memory, taking the VMA lock —
	// no messages (software remote VMA walker).
	if node != origin {
		o.Stats.RemoteVMAWalks++
	}
	// Fault-path kernel instructions (fused paths are short: no
	// serialization, no protocol state machines).
	t.Stats.NodeInstructions[node] += 60
	kernel.VMALookupCost(t.Port, o.ctrlPages[proc.PID], proc.VMAs.Len())
	area, err := kernel.CheckVMA(proc, va, write)
	if err != nil {
		return err
	}
	if area.FileBacked() {
		// File pages come from the shared page cache: one frame, mapped by
		// both kernels directly — no PTL ping-pong, no messages.
		return kernel.FileFaultIn(t, area, va, write)
	}

	o.lockPTL(t)
	defer o.unlockPTL(t)

	meta := proc.Meta(va)
	other := kernel.Other(node)

	// Case 1: the other kernel already mapped this page. The frame is
	// shared as-is over cache-coherent memory: read the other table's
	// entry with the remote walker, convert the format, map locally.
	if meta.Valid[other] {
		otherTbl := proc.Tables[other]
		ea, ok := otherTbl.LeafEntryAddr(t.Port, va)
		if !ok {
			return fmt.Errorf("stramash: other kernel's PTE vanished at %#x", va)
		}
		raw := t.Port.Read64(ea)
		conv, ok := pgtable.ConvertLeaf(o.Ctx.Kernel(node).Fmt, o.Ctx.Kernel(other).Fmt, raw)
		if !ok {
			return fmt.Errorf("stramash: unconvertible remote PTE %#x at %#x", raw, va)
		}
		pfn, perms, _ := o.Ctx.Kernel(node).Fmt.DecodeLeaf(conv)
		_ = perms
		frame := mem.PhysAddr(pfn << mem.PageShift)
		if _, err := kernel.MapFrame(o.Ctx, t.Port, proc, node, va, frame, true); err != nil {
			return err
		}
		meta.FrameOwner[node] = meta.FrameOwner[other]
		return nil
	}

	// Case 2: already valid here (write-upgrade or racing fault): remap.
	if meta.Valid[node] {
		_, err := kernel.MapFrame(o.Ctx, t.Port, proc, node, va, meta.Frames[node], true)
		return err
	}

	// Case 3: fresh anonymous page.
	if node == origin {
		frame, err := o.allocNear(t.Port, node)
		if err != nil {
			return err
		}
		meta.FrameOwner[node] = node
		o.Global.RegisterFrame(frame, proc, va)
		_, err = kernel.MapFrame(o.Ctx, t.Port, proc, node, va, frame, true)
		proc.FaultsHandled[node]++
		return err
	}

	// Remote kernel allocates locally without notifying the origin — but
	// only at the PTE level: if the origin table's upper levels for this
	// VA are missing, the origin kernel handles the fault instead
	// (prototype limitation, §9.2.3 — this is what keeps Table 3's
	// Stramash replication count non-zero for sparse access patterns).
	originTbl, err := kernel.EnsureTable(o.Ctx, t.Port, proc, origin)
	if err != nil {
		return err
	}
	if o.DisableRemoteAlloc {
		return o.originHandlesFault(t, va)
	}
	if _, upperPresent := originTbl.LeafEntryAddr(t.Port, va); !upperPresent {
		return o.originHandlesFault(t, va)
	}

	frame, err := o.allocNear(t.Port, node)
	if err != nil {
		return err
	}
	o.Stats.RemoteAllocations++
	proc.RemoteAllocs++
	meta.FrameOwner[node] = node
	o.Global.RegisterFrame(frame, proc, va)
	if _, err := kernel.MapFrame(o.Ctx, t.Port, proc, node, va, frame, true); err != nil {
		return err
	}
	// Insert into the origin's page table in the origin ISA's format via
	// the software remote page-table walker.
	ea, ok := originTbl.LeafEntryAddr(t.Port, va)
	if !ok {
		return fmt.Errorf("stramash: origin PTE slot vanished at %#x", va)
	}
	entry := o.Ctx.Kernel(origin).Fmt.EncodeLeaf(uint64(frame>>mem.PageShift),
		pgtable.Perms{Present: true, User: true, Write: true, Accessed: true})
	t.Port.Write64(ea, entry)
	o.Stats.RemotePTWrites++
	o.emit(t, trace.KindRemotePTWrite, va, int64(origin))
	meta.Frames[origin] = frame
	meta.Valid[origin] = true
	meta.FrameOwner[origin] = node
	proc.FlushTLB(origin, va)
	proc.FaultsHandled[node]++
	return nil
}

// originHandlesFault forwards a remote fault whose upper-level tables are
// missing in the origin's page table to the origin kernel (one message
// round trip, the prototype's legacy path, §9.2.3). The origin allocates
// the anonymous page from its own memory — Popcorn's placement policy —
// and installs it in the *remote* kernel's page table (the faulting
// process runs there; the origin's own table is populated lazily on its
// own next touch). Because the origin table's upper levels for the region
// are therefore never built by this path, every page of a
// remotely-first-touched region keeps taking it — which is exactly why
// FT's Table 3 count stays high (83% reduction) while the others reach
// >99.9%.
func (o *OS) originHandlesFault(t *kernel.Task, va pgtable.VirtAddr) error {
	proc := t.Proc
	origin := proc.Origin
	node := t.Node
	o.Stats.OriginHandled++
	proc.OriginHandled++
	o.emit(t, trace.KindOriginFault, va, 0)
	t.Stats.NodeInstructions[node] += 40
	t.Stats.NodeInstructions[origin] += 80
	var frame mem.PhysAddr
	var ferr error
	o.Msgr.RPC(t.Port, func(originPt *hw.Port, r []byte) []byte {
		// Origin-side legacy handler: allocate at origin, then write the
		// PTE into the remote kernel's table in the remote ISA's format
		// (remote page-table walker in the opposite direction).
		frame, ferr = o.Ctx.Kernel(origin).AllocZeroedPage(originPt)
		if ferr != nil {
			return make([]byte, 16)
		}
		meta := proc.Meta(va)
		meta.FrameOwner[node] = origin
		_, ferr = kernel.MapFrame(o.Ctx, originPt, proc, node, va, frame, true)
		return make([]byte, 16)
	}, make([]byte, 64))
	if ferr != nil {
		return ferr
	}
	o.Global.RegisterFrame(frame, proc, va)
	// The paper accounts pages that took this legacy path under Table 3's
	// Stramash "Replicated Pages" column.
	proc.ReplicatedPages++
	return nil
}

// MigrateTask implements kernel.OS: fused migration passes the execution
// context through shared memory; a single notification IPI (plus one
// state message for the non-shareable pieces) moves the task (§6.2, §6.4).
func (o *OS) MigrateTask(t *kernel.Task, to mem.NodeID) error {
	if to == t.Node {
		return nil
	}
	proc := t.Proc
	t.Stats.NodeInstructions[t.Node] += 250
	t.Stats.NodeInstructions[to] += 250
	ctrl := o.ctrlPages[proc.PID]
	// Write the register set and task context into shared memory (the
	// destination reads it from there — no serialization, §5).
	state := make([]byte, 512)
	t.Port.Write(ctrl+1024, state)
	// One message notifies the destination kernel to adopt the task.
	o.Msgr.Notify(t.Port, make([]byte, 64))
	// Destination kernel reads the context from shared memory.
	dstPt := o.Ctx.Plat.NewPort(to, t.Core, t.Th)
	t.Th.Advance(o.Ctx.Plat.Clock(to).FromMicros(o.Ctx.Plat.Cfg.IPIMicros))
	dstPt.Read(ctrl+1024, len(state))
	// Fused namespaces need no synchronization — both kernels already
	// share one set (§6.6).
	t.Rebind(to)
	return nil
}

// FutexWait implements kernel.OS: the remote kernel manipulates the futex
// list directly in shared memory (§6.5), including the value check under
// the cross-ISA lock — no origin round trip.
func (o *OS) FutexWait(t *kernel.Task, uaddr pgtable.VirtAddr, expected uint64) error {
	t.Th.BeginSerial()
	defer t.Th.EndSerial()
	f := o.futexes[t.Proc.PID].Get(t.Proc.PID, uaddr)
	f.Lock(t.Port)
	if t.CapCancelPending() {
		// The authorizing capability was revoked between the syscall gate
		// and this enqueue: back out as a spurious wake; the gated wrapper
		// turns the pending cancel into a typed *CapError.
		f.Unlock(t.Port)
		return kernel.ErrFutexRetry
	}
	val, err := kernel.FutexLoadValue(o.Ctx, t.Port, t.Proc, uaddr)
	if err != nil {
		f.Unlock(t.Port)
		return err
	}
	if val != expected {
		f.Unlock(t.Port)
		return kernel.ErrFutexRetry
	}
	f.Enqueue(t.Port, t)
	f.Unlock(t.Port)
	t.Stats.FutexWaits++
	blockStart := t.Th.Now()
	t.Sleep("futex")
	if tr := o.Ctx.Plat.Tracer; tr != nil {
		tr.Emit(trace.Event{Cycle: int64(blockStart), Kind: trace.KindFutexWait,
			Node: int8(t.Node), Core: int16(t.Core), Tid: int32(t.Th.ID),
			VA: uint64(uaddr), Cost: int64(t.Th.Now() - blockStart)})
	}
	return nil
}

// FutexWake implements kernel.OS: direct list access; waking a waiter
// executing on the other ISA costs one cross-ISA IPI.
func (o *OS) FutexWake(t *kernel.Task, uaddr pgtable.VirtAddr, n int) (int, error) {
	t.Th.BeginSerial()
	defer t.Th.EndSerial()
	f := o.futexes[t.Proc.PID].Get(t.Proc.PID, uaddr)
	f.Lock(t.Port)
	woken := f.Dequeue(t.Port, n)
	f.Unlock(t.Port)
	for _, w := range woken {
		if w.Node != t.Node {
			o.Ctx.Plat.SendIPI(t.Th, w.Node, w.Core)
			o.Stats.CrossISAIPIWakes++
			o.emit(t, trace.KindIPIWake, uaddr, int64(w.Node))
		}
		wakeLat := o.Ctx.Plat.Clock(w.Node).FromMicros(o.Ctx.Plat.Cfg.IPIMicros)
		w.Awaken(t.Th.Now() + wakeLat)
	}
	t.Stats.FutexWakes += int64(len(woken))
	o.emit(t, trace.KindFutexWake, uaddr, int64(len(woken)))
	return len(woken), nil
}

// ExitTask implements kernel.OS: §6.4's recycling discipline — each frame
// is returned by the kernel that allocated it; the origin merely
// invalidates PTEs for remote-owned frames.
func (o *OS) ExitTask(t *kernel.Task) error {
	for _, m := range t.Proc.Pages {
		for n := 0; n < 2; n++ {
			if m.Valid[n] {
				o.Global.UnregisterFrame(m.Frames[n])
			}
		}
	}
	return kernel.ReleaseProcessPages(o.Ctx, t.Port, t.Proc, func(node mem.NodeID, m *kernel.PageMeta) mem.NodeID {
		return m.FrameOwner[node]
	})
}
