package stramash

import (
	"testing"

	"fmt"
	"repro/internal/hw"
	"repro/internal/interconnect"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/pgtable"

	"repro/internal/sim"
)

// testSystem boots a context + fused OS over the given memory model.
func testSystem(t *testing.T, model mem.Model) (*kernel.Context, *OS) {
	t.Helper()
	plat := hw.NewPlatform(hw.DefaultConfig(model))
	x86k, err := kernel.Boot(plat, mem.NodeX86, pgtable.X86Format{}, kernel.BootConfig{ReserveLow: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	armk, err := kernel.Boot(plat, mem.NodeArm, pgtable.Arm64Format{}, kernel.BootConfig{ReserveLow: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &kernel.Context{Plat: plat, Kernels: [2]*kernel.Kernel{x86k, armk}}
	var os *OS
	plat.Engine.Spawn("boot", 0, func(th *sim.Thread) {
		pt := plat.NewPort(mem.NodeX86, 0, th)
		base := plat.Layout().OwnedRegions(mem.NodeX86)[0].Start + (32 << 20)
		msgr := interconnect.NewMessenger(interconnect.DefaultConfig(interconnect.SHM, base), plat, pt)
		os = New(ctx, msgr)
	})
	if err := plat.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	return ctx, os
}

// runTask creates one process+task and runs body.
func runTask(t *testing.T, ctx *kernel.Context, os *OS, origin mem.NodeID, body func(task *kernel.Task) error) {
	t.Helper()
	var proc *kernel.Process
	ctx.Plat.Engine.Spawn("setup", 0, func(th *sim.Thread) {
		pt := ctx.Plat.NewPort(origin, 0, th)
		proc, _ = os.CreateProcess(pt, origin)
	})
	if err := ctx.Plat.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	var bodyErr error
	ctx.Plat.Engine.Spawn("task", 0, func(th *sim.Thread) {
		task := kernel.NewTask("task", proc, os, ctx, th)
		bodyErr = body(task)
	})
	if err := ctx.Plat.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	if bodyErr != nil {
		t.Fatal(bodyErr)
	}
}

func TestFusedNamespaceSharing(t *testing.T) {
	ctx, _ := testSystem(t, mem.Shared)
	if ctx.Kernels[0].NS != ctx.Kernels[1].NS {
		t.Fatal("kernels do not share a namespace set")
	}
	if len(ctx.Kernels[0].NS.CPUList) != 2 {
		t.Errorf("fused CPU list = %v", ctx.Kernels[0].NS.CPUList)
	}
}

func TestOriginHandledFaultOnMissingUpperLevels(t *testing.T) {
	ctx, os := testSystem(t, mem.Shared)
	runTask(t, ctx, os, mem.NodeX86, func(task *kernel.Task) error {
		// A huge sparse VMA: pages far apart live under different PMDs.
		base, err := task.Proc.Mmap(1<<30, kernel.VMARead|kernel.VMAWrite, "sparse")
		if err != nil {
			return err
		}
		if err := task.Store(base, 8, 1); err != nil { // origin touch
			return err
		}
		if err := task.Migrate(mem.NodeArm); err != nil {
			return err
		}
		// Touch a page in a fresh 2 MB region: origin's PMD is missing,
		// so the origin must handle it (legacy path).
		if err := task.Store(base+512*mem.PageSize, 8, 2); err != nil {
			return err
		}
		// Touch the page right next to the origin-touched one: PTE-level
		// remote allocation (upper levels exist).
		if err := task.Store(base+mem.PageSize, 8, 3); err != nil {
			return err
		}
		return nil
	})
	if os.Stats.OriginHandled == 0 {
		t.Error("missing-upper-level fault was not forwarded to origin")
	}
	if os.Stats.RemoteAllocations == 0 {
		t.Error("PTE-level fault was not handled by remote allocation")
	}
}

func TestRemotePTWriteUsesOriginFormat(t *testing.T) {
	ctx, os := testSystem(t, mem.Shared)
	var proc *kernel.Process
	var va pgtable.VirtAddr
	runTask(t, ctx, os, mem.NodeX86, func(task *kernel.Task) error {
		proc = task.Proc
		base, err := task.Proc.Mmap(1<<20, kernel.VMARead|kernel.VMAWrite, "d")
		if err != nil {
			return err
		}
		if err := task.Store(base, 8, 1); err != nil {
			return err
		}
		if err := task.Migrate(mem.NodeArm); err != nil {
			return err
		}
		va = base + 4*mem.PageSize
		return task.Store(va, 8, 99)
	})
	// Read the origin (x86) table's raw PTE: it must decode under the x86
	// format and map the same frame the arm table maps.
	phys := ctx.Plat.Phys
	ea, ok := proc.Tables[mem.NodeX86].LeafEntryAddr(phys, va)
	if !ok {
		t.Fatal("origin PTE slot missing")
	}
	raw := phys.Read64(ea)
	pfn, perms, ok := pgtable.X86Format{}.DecodeLeaf(raw)
	if !ok || !perms.Write {
		t.Fatalf("origin PTE %#x does not decode as writable x86 leaf", raw)
	}
	armPfn, _, ok2 := proc.Tables[mem.NodeArm].Walk(phys, va)
	if !ok2 || armPfn != pfn {
		t.Errorf("frames differ: x86 %#x vs arm %#x", pfn, armPfn)
	}
}

func TestPTLMutualExclusion(t *testing.T) {
	ctx, os := testSystem(t, mem.Shared)
	var proc *kernel.Process
	ctx.Plat.Engine.Spawn("setup", 0, func(th *sim.Thread) {
		pt := ctx.Plat.NewPort(mem.NodeX86, 0, th)
		proc, _ = os.CreateProcess(pt, mem.NodeX86)
		proc.Mmap(1<<20, kernel.VMARead|kernel.VMAWrite, "d")
	})
	if err := ctx.Plat.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	// Two tasks hammer faults on disjoint pages concurrently; the PTL and
	// page metadata must stay consistent.
	for i := 0; i < 2; i++ {
		i := i
		ctx.Plat.Engine.Spawn("t", 0, func(th *sim.Thread) {
			task := kernel.NewTask("t", proc, os, ctx, th)
			for p := 0; p < 50; p++ {
				va := kernel.UserBase + pgtable.VirtAddr((p*2+i)*mem.PageSize)
				if err := task.Store(va, 8, uint64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		})
	}
	if err := ctx.Plat.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	if os.Stats.PTLAcquisitions == 0 {
		t.Error("no PTL acquisitions recorded")
	}
	// All 100 pages mapped exactly once.
	mapped := 0
	for _, m := range proc.Pages {
		if m.Valid[0] {
			mapped++
		}
	}
	if mapped != 100 {
		t.Errorf("mapped pages = %d, want 100", mapped)
	}
}

func TestGlobalAllocatorOnlineOffline(t *testing.T) {
	ctx, os := testSystem(t, mem.Shared)
	g := os.Global
	if g.FreeBlocks() == 0 {
		t.Fatal("no blocks carved from the CXL pool")
	}
	before := ctx.Kernels[0].Alloc.TotalPages()
	ctx.Plat.Engine.Spawn("t", 0, func(th *sim.Thread) {
		pt := ctx.Plat.NewPort(mem.NodeX86, 0, th)
		blocks := g.blocks
		if err := g.Online(pt, mem.NodeX86, blocks[0]); err != nil {
			t.Error(err)
			return
		}
		if ctx.Kernels[0].Alloc.TotalPages() != before+int64(g.Cfg.BlockSize/mem.PageSize) {
			t.Error("online did not grow the kernel's memory")
		}
		if err := g.Online(pt, mem.NodeArm, blocks[0]); err == nil {
			t.Error("double online accepted")
		}
		if err := g.Offline(pt, blocks[0]); err != nil {
			t.Error(err)
			return
		}
		if blocks[0].Owner != mem.NodeNone {
			t.Error("offline did not release ownership")
		}
		if ctx.Kernels[0].Alloc.TotalPages() != before {
			t.Error("offline did not shrink the kernel's memory")
		}
	})
	if err := ctx.Plat.Engine.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalAllocatorEvacuation(t *testing.T) {
	ctx, os := testSystem(t, mem.Shared)
	g := os.Global
	var proc *kernel.Process
	ctx.Plat.Engine.Spawn("t", 0, func(th *sim.Thread) {
		pt := ctx.Plat.NewPort(mem.NodeX86, 0, th)
		var err error
		proc, err = os.CreateProcess(pt, mem.NodeX86)
		if err != nil {
			t.Error(err)
			return
		}
		blk := g.blocks[0]
		if err := g.Online(pt, mem.NodeX86, blk); err != nil {
			t.Error(err)
			return
		}
		task := kernel.NewTask("t", proc, os, ctx, th)
		base, err := proc.Mmap(64<<10, kernel.VMARead|kernel.VMAWrite, "d")
		if err != nil {
			t.Error(err)
			return
		}
		// Fill pages and then force some into the onlined block by direct
		// allocation + registration.
		for i := 0; i < 4; i++ {
			va := base + pgtable.VirtAddr(i*mem.PageSize)
			frame, err := ctx.Kernels[0].Alloc.AllocPages(0)
			_ = frame
			if err != nil {
				t.Error(err)
				return
			}
			ctx.Kernels[0].Alloc.Free(frame)
			if err := task.Store(va, 8, uint64(0x1111*i+7)); err != nil {
				t.Error(err)
				return
			}
		}
		// Manually migrate one page's frame into the block to make the
		// offline path do real evacuation work.
		va := base
		meta := proc.MetaIfAny(va)
		oldFrame := meta.Frames[0]
		inBlk, err := allocInside(ctx.Kernels[0].Alloc, blk)
		if err != nil {
			t.Error(err)
			return
		}
		pt.CopyPage(inBlk, oldFrame)
		if _, err := kernel.MapFrame(os.Ctx, pt, proc, mem.NodeX86, va, inBlk, true); err != nil {
			t.Error(err)
			return
		}
		g.UnregisterFrame(oldFrame)
		g.RegisterFrame(inBlk, proc, va)
		ctx.Kernels[0].Alloc.Free(oldFrame)

		// Offline must evacuate the page, preserving contents and mapping.
		if err := g.Offline(pt, blk); err != nil {
			t.Error(err)
			return
		}
		v, err := task.Load(va, 8)
		if err != nil {
			t.Error(err)
			return
		}
		if v != 7 {
			t.Errorf("post-evacuation value = %d, want 7", v)
		}
		meta = proc.MetaIfAny(va)
		if meta.Frames[0] >= blk.Start && meta.Frames[0] < blk.Start+mem.PhysAddr(blk.Size) {
			t.Error("page still inside offlined block")
		}
	})
	if err := ctx.Plat.Engine.Run(); err != nil {
		t.Fatal(err)
	}
}

// allocInside grabs a page inside blk from the allocator by parking
// max-order blocks below it (freed afterwards).
func allocInside(a *kernel.PageAlloc, blk *Block) (mem.PhysAddr, error) {
	var parked []mem.PhysAddr
	defer func() {
		for _, p := range parked {
			a.Free(p)
		}
	}()
	end := blk.Start + mem.PhysAddr(blk.Size)
	for {
		p, err := a.AllocPages(kernel.MaxOrder)
		if err != nil {
			return 0, fmt.Errorf("allocInside: exhausted before reaching block")
		}
		if p >= blk.Start && p < end {
			// Release the big block and take its lowest page (everything
			// below is parked, so the next single page comes from here).
			if err := a.Free(p); err != nil {
				return 0, err
			}
			return a.AllocPage()
		}
		parked = append(parked, p)
	}
}
