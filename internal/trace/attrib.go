package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Class buckets event kinds for the per-class cycle-attribution report —
// the reproduction's answer to the paper's §9 "where do the cycles go"
// analysis: fault handling vs. coherence vs. messaging vs. synchronization
// vs. raw memory, with user compute as the residual.
type Class uint8

const (
	ClassCompute   Class = iota // residual: busy cycles not claimed by any OS span
	ClassFault                  // page-fault resolution and task migration
	ClassMessaging              // cross-kernel RPC and notification round trips
	ClassSync                   // futex blocking and cross-ISA page-table lock spins
	ClassCoherence              // CXL snoop invalidations and data forwards
	ClassMemory                 // accesses that missed every cache level

	numClasses
)

var classNames = [numClasses]string{
	ClassCompute:   "compute",
	ClassFault:     "fault",
	ClassMessaging: "messaging",
	ClassSync:      "sync",
	ClassCoherence: "coherence",
	ClassMemory:    "memory",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// spanClass maps OS span kinds to their attribution class. Span costs are
// wall-clock durations on the emitting thread's timeline, so nested spans
// must be de-overlapped before summing (see Attribute).
func spanClass(k Kind) (Class, bool) {
	switch k {
	case KindPageFault, KindMigrate:
		return ClassFault, true
	case KindRPC, KindNotify:
		return ClassMessaging, true
	case KindFutexWait, KindPTLAcquire:
		return ClassSync, true
	case KindSchedPreempt, KindSchedSleep:
		return ClassSync, true
	}
	return 0, false
}

// componentClass maps additive hardware-latency kinds to their class.
// These are pure latency components (each access charges them exactly
// once), so they sum without de-overlapping — but they can occur *inside*
// an OS span, so they are reported as a separate tier rather than
// subtracted from span time.
func componentClass(k Kind) (Class, bool) {
	switch k {
	case KindSnoopInvalidate, KindSnoopData:
		return ClassCoherence, true
	case KindMemAccess:
		return ClassMemory, true
	}
	return 0, false
}

// Attribution is the per-class cycle breakdown computed from a trace.
type Attribution struct {
	// Spans holds exclusive cycles per OS class (fault/messaging/sync):
	// nested spans are de-overlapped, so each cycle of a thread's timeline
	// is claimed by at most one class and the classes sum to total
	// OS-mediated time.
	Spans [numClasses]int64
	// Components holds additive hardware latency per class
	// (coherence/memory). These cycles overlap the span tier: a remote
	// memory access inside a page fault counts in both.
	Components [numClasses]int64
	// Counts tallies events per kind (spans and components).
	Counts [numKinds]int64
	// PerNode splits span-tier cycles by emitting node (index 2 holds
	// events with Node < 0).
	PerNode [3][numClasses]int64
	// Busy is the sum of per-thread busy time (last event cycle minus
	// first event cycle per tid), the denominator for the compute
	// residual. It is a lower bound built from the trace alone.
	Busy int64
}

// interval is one already-attributed span on a thread's timeline, kept so
// a later-emitted enclosing span can subtract its inclusive duration.
type interval struct {
	start, end int64
}

// Attribute computes the per-class cycle breakdown for a recorded stream.
//
// Span events are emitted at span *end*, so within one thread an inner
// span always precedes its enclosing span in the stream. The algorithm
// keeps, per thread, the set of spans not yet claimed by a parent; a new
// span claims (and removes) every unclaimed span it fully contains and
// counts only the remaining exclusive cycles toward its class.
func Attribute(events []Event) *Attribution {
	a := &Attribution{}
	open := make(map[int32][]interval)
	firstSeen := make(map[int32]int64)
	lastSeen := make(map[int32]int64)
	for i := range events {
		e := &events[i]
		a.Counts[e.Kind]++
		if e.Tid >= 0 {
			if f, ok := firstSeen[e.Tid]; !ok || e.Cycle < f {
				firstSeen[e.Tid] = e.Cycle
			}
			if end := e.Cycle + e.Cost; end > lastSeen[e.Tid] {
				lastSeen[e.Tid] = end
			}
		}
		if c, ok := componentClass(e.Kind); ok {
			a.Components[c] += e.Cost
			continue
		}
		c, ok := spanClass(e.Kind)
		if !ok {
			continue
		}
		start, end := e.Cycle, e.Cycle+e.Cost
		exclusive := e.Cost
		if e.Tid >= 0 {
			kept := open[e.Tid][:0]
			for _, iv := range open[e.Tid] {
				if iv.start >= start && iv.end <= end {
					exclusive -= iv.end - iv.start
				} else {
					kept = append(kept, iv)
				}
			}
			open[e.Tid] = append(kept, interval{start, end})
		}
		if exclusive < 0 {
			exclusive = 0
		}
		a.Spans[c] += exclusive
		node := 2
		if e.Node == 0 || e.Node == 1 {
			node = int(e.Node)
		}
		a.PerNode[node][c] += exclusive
	}
	for tid, first := range firstSeen {
		a.Busy += lastSeen[tid] - first
	}
	return a
}

// OSTotal returns the total OS-mediated cycles (the de-overlapped span
// tier summed over fault, messaging, and sync).
func (a *Attribution) OSTotal() int64 {
	return a.Spans[ClassFault] + a.Spans[ClassMessaging] + a.Spans[ClassSync]
}

// Compute returns the compute residual: trace-observed busy time not
// claimed by any OS span (clamped at zero).
func (a *Attribution) Compute() int64 {
	c := a.Busy - a.OSTotal()
	if c < 0 {
		c = 0
	}
	return c
}

// Render formats the attribution as the -trace-summary report.
func (a *Attribution) Render() string {
	var sb strings.Builder
	pct := func(v int64) float64 {
		if a.Busy == 0 {
			return 0
		}
		return 100 * float64(v) / float64(a.Busy)
	}
	fmt.Fprintf(&sb, "cycle attribution (busy=%d cycles across traced threads)\n", a.Busy)
	fmt.Fprintf(&sb, "  %-12s %14s %7s   node0 / node1\n", "class", "cycles", "share")
	row := func(c Class, v int64) {
		fmt.Fprintf(&sb, "  %-12s %14d %6.1f%%   %d / %d\n",
			c, v, pct(v), a.PerNode[0][c], a.PerNode[1][c])
	}
	row(ClassFault, a.Spans[ClassFault])
	row(ClassMessaging, a.Spans[ClassMessaging])
	row(ClassSync, a.Spans[ClassSync])
	fmt.Fprintf(&sb, "  %-12s %14d %6.1f%%\n", ClassCompute, a.Compute(), pct(a.Compute()))
	fmt.Fprintf(&sb, "  hardware components (overlap the classes above):\n")
	fmt.Fprintf(&sb, "  %-12s %14d %6.1f%%\n", ClassCoherence, a.Components[ClassCoherence], pct(a.Components[ClassCoherence]))
	fmt.Fprintf(&sb, "  %-12s %14d %6.1f%%\n", ClassMemory, a.Components[ClassMemory], pct(a.Components[ClassMemory]))
	sb.WriteString("  event counts:\n")
	type kc struct {
		k Kind
		n int64
	}
	var kcs []kc
	for k := Kind(1); k < numKinds; k++ {
		if a.Counts[k] > 0 {
			kcs = append(kcs, kc{k, a.Counts[k]})
		}
	}
	sort.Slice(kcs, func(i, j int) bool {
		if kcs[i].n != kcs[j].n {
			return kcs[i].n > kcs[j].n
		}
		return kcs[i].k < kcs[j].k
	})
	for _, e := range kcs {
		fmt.Fprintf(&sb, "    %-18s %d\n", e.k, e.n)
	}
	return sb.String()
}
