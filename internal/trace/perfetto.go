package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Synthetic track ids for events that belong to a node rather than a
// simulated thread: coherence (snoops, memory misses) and OS/messaging
// activity with no thread context. Kept far above any real thread id.
const (
	TrackCoherence = 1 << 20
	TrackOS        = 1<<20 + 1
)

// chrome trace-event phases used by the exporter: "X" complete (span with
// duration), "i" instant, "M" metadata (process/thread names).

// WriteChromeTrace serialises the buffer in Chrome trace-event JSON
// ("traceEvents" array form), loadable in Perfetto and chrome://tracing.
//
// Track layout: one process per simulated node (pid = node+1, pid 0 for
// machine-global events), one thread track per simulated thread, plus a
// synthetic "coherence" track per node for snoop/memory events and an
// "os" track for kernel events with no thread context. Timestamps are the
// engine's cycle counts converted to microseconds at the node-0 clock, so
// the exported order matches the engine's global cycle order exactly.
func (b *Buffer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hz := b.ClockHz[0]
	if hz <= 0 {
		hz = 1_000_000 // degenerate fallback: 1 cycle == 1µs
	}
	us := func(cycles int64) string {
		return strconv.FormatFloat(float64(cycles)*1e6/float64(hz), 'f', 3, 64)
	}

	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}

	// Metadata: process names per node, thread names from spawn events and
	// the synthetic tracks, all sorted for deterministic output.
	type tkey struct {
		pid, tid int64
	}
	threadNames := map[tkey]string{}
	pids := map[int64]bool{}
	pidOf := func(node int8) int64 {
		if node == 0 || node == 1 {
			return int64(node) + 1
		}
		return 0
	}
	for i := range b.Events {
		e := &b.Events[i]
		pid := pidOf(e.Node)
		pids[pid] = true
		if e.Kind == KindThreadSpawn && e.Tid >= 0 {
			threadNames[tkey{pid, int64(e.Tid)}] = e.Name
		}
	}
	procName := map[int64]string{0: "machine", 1: "node0 (x86_64)", 2: "node1 (aarch64)"}
	var pidList []int64
	for pid := range pids {
		pidList = append(pidList, pid)
	}
	sort.Slice(pidList, func(i, j int) bool { return pidList[i] < pidList[j] })
	for _, pid := range pidList {
		emit(fmt.Sprintf(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":%q}}`, pid, procName[pid]))
		if pid > 0 {
			threadNames[tkey{pid, TrackCoherence}] = "coherence"
			threadNames[tkey{pid, TrackOS}] = "os"
		}
	}
	var tkeys []tkey
	for k := range threadNames {
		tkeys = append(tkeys, k)
	}
	sort.Slice(tkeys, func(i, j int) bool {
		if tkeys[i].pid != tkeys[j].pid {
			return tkeys[i].pid < tkeys[j].pid
		}
		return tkeys[i].tid < tkeys[j].tid
	})
	for _, k := range tkeys {
		emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":%q}}`,
			k.pid, k.tid, threadNames[k]))
	}

	for i := range b.Events {
		e := &b.Events[i]
		pid := pidOf(e.Node)
		tid := int64(e.Tid)
		if e.Tid < 0 {
			tid = TrackOS
		}
		if _, hw := componentClass(e.Kind); hw {
			tid = TrackCoherence
		}
		name := e.Kind.String()
		if e.Name != "" {
			name = name + ":" + e.Name
		}
		args := fmt.Sprintf(`{"va":"0x%x","pa":"0x%x","arg":%d,"cost":%d,"tid":%d}`,
			e.VA, e.PA, e.Arg, e.Cost, e.Tid)
		if _, span := spanClass(e.Kind); span {
			emit(fmt.Sprintf(`{"ph":"X","name":%q,"cat":"os","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":%s}`,
				name, pid, tid, us(e.Cycle), us(e.Cost), args))
		} else {
			emit(fmt.Sprintf(`{"ph":"i","s":"t","name":%q,"cat":"sim","pid":%d,"tid":%d,"ts":%s,"args":%s}`,
				name, pid, tid, us(e.Cycle), args))
		}
	}

	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
