// Package trace is the reproduction's deterministic, cycle-timestamped
// event tracing subsystem. Every layer of the simulated stack — the
// scheduling engine, the cache/coherence model, the kernels, both OS
// personalities, and the messaging fabric — emits structured events into a
// Tracer when one is configured, and emits nothing (one nil check, zero
// allocations) when none is.
//
// Two properties are load-bearing and guarded by tests:
//
//   - Determinism: events carry simulated-cycle timestamps and are appended
//     in simulation order, so a traced run produces a byte-identical event
//     stream however the host schedules it (sequentially or under the
//     experiment pool).
//   - No observer effect: emitting an event never advances a simulated
//     clock, touches simulated memory, or changes a code path, so cycle
//     counts with tracing enabled are identical to untraced runs.
//
// The package is intentionally dependency-free (stdlib only): it sits below
// internal/sim and internal/mem in the build order so that every layer can
// import it without cycles. Cycle values are plain int64 (the same unit as
// sim.Cycles); node IDs are plain int8 (the same values as mem.NodeID).
package trace

import (
	"fmt"
	"strings"
)

// Kind classifies one traced event. The constant order is part of the
// serialized stream format; append new kinds at the end.
type Kind uint8

const (
	// KindNone is the zero Kind; it is never emitted.
	KindNone Kind = iota

	// Scheduler events (internal/sim): the engine's thread lifecycle.
	KindThreadSpawn  // a simulated thread was created (Name = thread name)
	KindThreadSwitch // the engine granted the thread the execution token
	KindThreadBlock  // the thread parked (Name = block reason)
	KindThreadWake   // a wake-up reached the thread (Cycle = delivery time)
	KindThreadDone   // the thread finished

	// Cache/coherence events (internal/cache): the CXL snoop protocol and
	// the miss paths that reach memory. Cache hits are not traced — they
	// are the common case and would dominate the stream without adding
	// attribution signal.
	KindSnoopInvalidate // cross-node Snoop Invalidate (Cost = invalidate latency)
	KindSnoopData       // cross-node Snoop Data forward, M/E -> S (Cost = forward latency)
	KindMemAccess       // an access missed every cache level (Arg: 0 local, 1 remote, Cost = memory latency)

	// Kernel events (internal/kernel): the OS substrate.
	KindPageFault // span: one OS fault resolution (VA set, Arg: 0 read, 1 write, Cost = duration)
	KindPageAlloc // buddy page allocation (PA = frame)
	KindPageFree  // buddy page free (PA = frame)
	KindFutexWait // span: enqueue-to-wake block on a futex (VA = uaddr, Cost = blocked cycles)
	KindFutexWake // futex wake (VA = uaddr, Arg = waiters woken)
	KindMigrate   // span: cross-ISA task migration (Arg = destination node, Cost = duration)

	// Popcorn DSM events (internal/popcorn): the multiple-kernel baseline.
	KindDSMRequest    // remote fault served by the origin kernel over messages
	KindPageReplicate // DSM page replication into a local frame (VA set)
	KindDSMInvalidate // DSM invalidation of the other kernel's copy (VA set)
	KindVMAFetch      // remote kernel fetched a VMA from the origin (VA set)
	KindFutexRPC      // futex operation forwarded to the origin kernel by RPC

	// Stramash fused-kernel events (internal/stramash).
	KindRemotePTWrite   // PTE written into the other kernel's table (VA set)
	KindPTLAcquire      // span: cross-ISA page-table lock acquisition (Cost = spin cycles)
	KindIPIWake         // cross-ISA futex wake delivered by a single IPI
	KindOriginFault     // remote fault deferred to the origin kernel (legacy path)
	KindGlobalBlockMove // global allocator moved a memory block between kernels

	// Interconnect events (internal/interconnect, internal/hw).
	KindRingEnqueue // ring-buffer slot enqueued (PA = slot, Arg = payload bytes)
	KindRingDequeue // ring-buffer slot dequeued (PA = slot, Arg = payload bytes)
	KindDoorbell    // cross-ISA IPI doorbell rung (Arg = destination node)
	KindMsgSend     // one message handed to the transport (Arg = payload bytes)
	KindRPC         // span: full request/response round trip (Cost = duration)
	KindNotify      // span: one-way notification delivered (Cost = duration)

	// Kernel CPU-scheduler events (internal/kernel sched.go): the run-queue
	// transitions of tasks on simulated CPUs. Node/Core identify the CPU.
	KindSchedEnqueue  // task queued on a busy CPU's run queue (Arg = queue depth after)
	KindSchedDispatch // task occupies the CPU and starts running
	KindSchedPreempt  // span: quantum expiry forced the task off the CPU (Cost = wait until redispatch)
	KindSchedSleep    // span: task left the CPU to sleep (Name = reason, Cost = cycles off-CPU)
	KindTaskClone     // a task cloned a sibling into its process (Arg = child thread id)

	// VFS page-cache events (internal/vfs): file pages moving through the
	// fused or Popcorn-replicated page cache. VA carries the byte offset of
	// the page within the file, PA the backing frame, Arg the inode number.
	KindPageCacheHit        // file page found in the node's reachable cache
	KindPageCacheMiss       // file page faulted into the cache (alloc or DSM fetch)
	KindPageCacheWriteback  // dirty file page flushed to its home replica
	KindPageCacheInvalidate // a node's cached copy of a file page was discarded

	// Network events (internal/net, kernel socket syscalls): simulated NICs
	// on the multi-machine fabric and the TCP-lite transport above them.
	// Node identifies the node within the emitting machine; Arg carries the
	// machine index for fabric-level events so cluster traces stay
	// attributable.
	KindNICDoorbell   // task rang the NIC TX doorbell (Arg = machine, Cost = frame bytes)
	KindNetRetransmit // frame retransmitted after a full RX ring (Arg = dest machine)
	KindSockSend      // socket send syscall completed (Arg = payload bytes)
	KindSockRecv      // socket recv syscall returned data (Arg = payload bytes)

	// Capability events (internal/cap gates in the kernel): emitted only
	// on tenant-owned paths, so single-tenant (root) traces never contain
	// them — part of the root-path observer-effect-freedom contract.
	KindCapDenied // a capability gate refused an access (Arg = cap ID, 0 for path denials)
	KindCapRevoke // a capability was revoked (Arg = revoked cap ID)
	KindQuotaHit  // a tenant budget charge was refused (Arg = tenant index)

	numKinds
)

var kindNames = [numKinds]string{
	KindNone:            "none",
	KindThreadSpawn:     "thread-spawn",
	KindThreadSwitch:    "thread-switch",
	KindThreadBlock:     "thread-block",
	KindThreadWake:      "thread-wake",
	KindThreadDone:      "thread-done",
	KindSnoopInvalidate: "snoop-invalidate",
	KindSnoopData:       "snoop-data",
	KindMemAccess:       "mem-access",
	KindPageFault:       "page-fault",
	KindPageAlloc:       "page-alloc",
	KindPageFree:        "page-free",
	KindFutexWait:       "futex-wait",
	KindFutexWake:       "futex-wake",
	KindMigrate:         "migrate",
	KindDSMRequest:      "dsm-request",
	KindPageReplicate:   "page-replicate",
	KindDSMInvalidate:   "dsm-invalidate",
	KindVMAFetch:        "vma-fetch",
	KindFutexRPC:        "futex-rpc",
	KindRemotePTWrite:   "remote-pt-write",
	KindPTLAcquire:      "ptl-acquire",
	KindIPIWake:         "ipi-wake",
	KindOriginFault:     "origin-fault",
	KindGlobalBlockMove: "global-block-move",
	KindRingEnqueue:     "ring-enqueue",
	KindRingDequeue:     "ring-dequeue",
	KindDoorbell:        "doorbell",
	KindMsgSend:         "msg-send",
	KindRPC:             "rpc",
	KindNotify:          "notify",
	KindSchedEnqueue:    "sched-enqueue",
	KindSchedDispatch:   "sched-dispatch",
	KindSchedPreempt:    "sched-preempt",
	KindSchedSleep:      "sched-sleep",
	KindTaskClone:       "task-clone",

	KindPageCacheHit:        "page-cache-hit",
	KindPageCacheMiss:       "page-cache-miss",
	KindPageCacheWriteback:  "page-cache-writeback",
	KindPageCacheInvalidate: "page-cache-invalidate",

	KindNICDoorbell:   "nic-doorbell",
	KindNetRetransmit: "net-retransmit",
	KindSockSend:      "sock-send",
	KindSockRecv:      "sock-recv",

	KindCapDenied: "cap-denied",
	KindCapRevoke: "cap-revoke",
	KindQuotaHit:  "quota-hit",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one traced occurrence. All fields are plain values (no pointers
// except the static Name string), so constructing an Event on a hot path
// allocates nothing.
//
// For span events (Cost > 0 kinds: page faults, RPCs, futex blocks, PTL
// spins, migrations) Cycle is the span's *start* and Cost its duration, in
// cycles of the emitting thread's clock. For instantaneous events Cycle is
// the moment of occurrence and Cost is a pure latency component (snoop and
// memory latencies) or zero.
type Event struct {
	Cycle int64 // simulated time (see above)
	Cost  int64 // duration or latency component in cycles
	VA    uint64
	PA    uint64
	Arg   int64  // kind-specific scalar (see Kind docs)
	Name  string // static label (thread name, block reason); never formatted
	Tid   int32  // emitting simulated thread, -1 if unknown
	Node  int8   // node the event belongs to, -1 if machine-global
	Core  int16
	Kind  Kind
}

// Tracer receives events. Implementations must not advance simulated time
// or touch simulated state: tracing is observation only. The nil Tracer is
// the disabled state — every emit site performs exactly one nil check.
type Tracer interface {
	Emit(ev Event)
}

// ClockSetter is implemented by tracers that want the machine's per-node
// clock rates for time conversion (the machine builder calls it once).
type ClockSetter interface {
	SetClockHz(hz [2]int64)
}

// Buffer is the standard Tracer: an append-only in-memory event buffer.
// The simulation engine serializes all simulated execution on one token,
// so Buffer needs no locking when used by a single machine.
type Buffer struct {
	Events  []Event
	ClockHz [2]int64
}

// NewBuffer returns an empty buffer with default evaluation-platform
// clocks (overridden by the machine builder via SetClockHz).
func NewBuffer() *Buffer {
	return &Buffer{ClockHz: [2]int64{2_100_000_000, 2_000_000_000}}
}

// Emit implements Tracer.
func (b *Buffer) Emit(ev Event) { b.Events = append(b.Events, ev) }

// SetClockHz implements ClockSetter.
func (b *Buffer) SetClockHz(hz [2]int64) { b.ClockHz = hz }

// Reset discards all recorded events (clock configuration is kept).
func (b *Buffer) Reset() { b.Events = b.Events[:0] }

// Len returns the number of recorded events.
func (b *Buffer) Len() int { return len(b.Events) }

// Text renders the event stream in a fixed line-per-event format. Two runs
// of the same simulation must produce byte-identical Text output — the
// golden determinism tests compare exactly this.
func (b *Buffer) Text() string {
	var sb strings.Builder
	for i := range b.Events {
		e := &b.Events[i]
		fmt.Fprintf(&sb, "%d %s node=%d core=%d tid=%d va=%#x pa=%#x arg=%d cost=%d",
			e.Cycle, e.Kind, e.Node, e.Core, e.Tid, e.VA, e.PA, e.Arg, e.Cost)
		if e.Name != "" {
			fmt.Fprintf(&sb, " name=%q", e.Name)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CountByKind tallies events per kind.
func (b *Buffer) CountByKind() map[Kind]int {
	m := make(map[Kind]int)
	for i := range b.Events {
		m[b.Events[i].Kind]++
	}
	return m
}
