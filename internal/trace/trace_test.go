package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestBufferTextDeterministic(t *testing.T) {
	mk := func() *Buffer {
		b := NewBuffer()
		b.Emit(Event{Cycle: 10, Kind: KindThreadSpawn, Tid: 1, Node: 0, Name: "waiter"})
		b.Emit(Event{Cycle: 20, Kind: KindMemAccess, Tid: 1, Node: 0, PA: 0x1000, Arg: 1, Cost: 350})
		b.Emit(Event{Cycle: 400, Kind: KindPageFault, Tid: 1, Node: 0, VA: 0x7f0000, Arg: 1, Cost: 900})
		return b
	}
	a, b := mk().Text(), mk().Text()
	if a != b {
		t.Fatalf("Text not deterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "page-fault") || !strings.Contains(a, `name="waiter"`) {
		t.Fatalf("unexpected text:\n%s", a)
	}
	if got := mk().Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}

func TestKindStringsComplete(t *testing.T) {
	for k := KindNone; k < numKinds; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("Kind %d has no name", k)
		}
	}
}

func TestAttributeNestedSpansExclusive(t *testing.T) {
	b := NewBuffer()
	// Thread 1: an RPC [100,300) nested inside a page fault [0,1000).
	// Inner spans are emitted first (span events fire at span end).
	b.Emit(Event{Cycle: 100, Cost: 200, Kind: KindRPC, Tid: 1, Node: 0})
	b.Emit(Event{Cycle: 0, Cost: 1000, Kind: KindPageFault, Tid: 1, Node: 0, VA: 0x1000})
	a := Attribute(b.Events)

	if got := a.Spans[ClassMessaging]; got != 200 {
		t.Errorf("messaging = %d, want 200", got)
	}
	// The fault's exclusive time excludes the nested RPC.
	if got := a.Spans[ClassFault]; got != 800 {
		t.Errorf("fault = %d, want 800 (1000 inclusive - 200 nested)", got)
	}
	if got := a.OSTotal(); got != 1000 {
		t.Errorf("OSTotal = %d, want 1000", got)
	}
	if got := a.Busy; got != 1000 {
		t.Errorf("Busy = %d, want 1000", got)
	}
	if got := a.Compute(); got != 0 {
		t.Errorf("Compute = %d, want 0", got)
	}
}

func TestAttributeDoubleNesting(t *testing.T) {
	b := NewBuffer()
	// fault [0,1000) > rpc [100,500) > ptl [150,250); emitted innermost first.
	b.Emit(Event{Cycle: 150, Cost: 100, Kind: KindPTLAcquire, Tid: 7, Node: 1})
	b.Emit(Event{Cycle: 100, Cost: 400, Kind: KindRPC, Tid: 7, Node: 1})
	b.Emit(Event{Cycle: 0, Cost: 1000, Kind: KindPageFault, Tid: 7, Node: 1})
	a := Attribute(b.Events)
	if got := a.Spans[ClassSync]; got != 100 {
		t.Errorf("sync = %d, want 100", got)
	}
	if got := a.Spans[ClassMessaging]; got != 300 {
		t.Errorf("messaging = %d, want 300 (400 - 100 nested)", got)
	}
	if got := a.Spans[ClassFault]; got != 600 {
		t.Errorf("fault = %d, want 600 (1000 - 400 nested rpc)", got)
	}
	if got := a.OSTotal(); got != 1000 {
		t.Errorf("OSTotal = %d, want 1000", got)
	}
}

func TestAttributeComponentsAdditive(t *testing.T) {
	b := NewBuffer()
	b.Emit(Event{Cycle: 10, Cost: 120, Kind: KindSnoopInvalidate, Tid: 2, Node: 0})
	b.Emit(Event{Cycle: 10, Cost: 90, Kind: KindSnoopData, Tid: 2, Node: 0})
	b.Emit(Event{Cycle: 50, Cost: 350, Kind: KindMemAccess, Tid: 2, Node: 0, Arg: 1})
	a := Attribute(b.Events)
	if got := a.Components[ClassCoherence]; got != 210 {
		t.Errorf("coherence = %d, want 210", got)
	}
	if got := a.Components[ClassMemory]; got != 350 {
		t.Errorf("memory = %d, want 350", got)
	}
	if got := a.OSTotal(); got != 0 {
		t.Errorf("OSTotal = %d, want 0", got)
	}
}

func TestAttributePerNodeSplit(t *testing.T) {
	b := NewBuffer()
	b.Emit(Event{Cycle: 0, Cost: 100, Kind: KindPageFault, Tid: 1, Node: 0})
	b.Emit(Event{Cycle: 0, Cost: 300, Kind: KindPageFault, Tid: 2, Node: 1})
	a := Attribute(b.Events)
	if a.PerNode[0][ClassFault] != 100 || a.PerNode[1][ClassFault] != 300 {
		t.Errorf("per-node fault split = %d/%d, want 100/300",
			a.PerNode[0][ClassFault], a.PerNode[1][ClassFault])
	}
}

func TestRenderMentionsAllClasses(t *testing.T) {
	b := NewBuffer()
	b.Emit(Event{Cycle: 0, Cost: 500, Kind: KindPageFault, Tid: 1, Node: 0})
	b.Emit(Event{Cycle: 600, Cost: 50, Kind: KindMemAccess, Tid: 1, Node: 0})
	out := Attribute(b.Events).Render()
	for _, want := range []string{"fault", "messaging", "sync", "compute", "coherence", "memory", "page-fault"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	b := NewBuffer()
	b.SetClockHz([2]int64{2_000_000_000, 1_800_000_000})
	b.Emit(Event{Cycle: 0, Kind: KindThreadSpawn, Tid: 1, Node: 0, Name: "pinger"})
	b.Emit(Event{Cycle: 0, Kind: KindThreadSpawn, Tid: 2, Node: 1, Name: "ponger"})
	b.Emit(Event{Cycle: 100, Cost: 900, Kind: KindPageFault, Tid: 1, Node: 0, VA: 0x2000})
	b.Emit(Event{Cycle: 150, Cost: 120, Kind: KindSnoopInvalidate, Tid: 2, Node: 1, PA: 0x88})
	b.Emit(Event{Cycle: 500, Kind: KindDoorbell, Tid: -1, Node: 1, Arg: 0})

	var buf bytes.Buffer
	if err := b.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	pidsSeen := map[float64]bool{}
	var spans, instants, meta int
	for _, ev := range doc.TraceEvents {
		pidsSeen[ev["pid"].(float64)] = true
		switch ev["ph"] {
		case "X":
			spans++
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if !pidsSeen[1] || !pidsSeen[2] {
		t.Errorf("expected events on both node pids, saw %v", pidsSeen)
	}
	if spans != 1 || instants != 4 {
		t.Errorf("spans=%d instants=%d, want 1/4", spans, instants)
	}
	if meta < 4 {
		t.Errorf("expected >=4 metadata records (2 processes + threads), got %d", meta)
	}
	// Determinism: a second export is byte-identical.
	var buf2 bytes.Buffer
	if err := b.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("WriteChromeTrace output not deterministic")
	}
}

func TestBufferReset(t *testing.T) {
	b := NewBuffer()
	b.Emit(Event{Cycle: 1, Kind: KindDoorbell})
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
	if b.CountByKind()[KindDoorbell] != 0 {
		t.Fatal("CountByKind nonzero after Reset")
	}
}
