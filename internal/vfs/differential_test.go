package vfs_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/pgtable"
	"repro/internal/vfs"
)

// These are the black-box regime tests: they boot whole machines (the
// external test package may import machine; the vfs package itself sits
// below kernel) and check the package's central invariant — the two
// coherence regimes are distinguishable only by where cycles go, never by
// file contents.

const diffPath = "/d/shared.bin"

// diffMachine boots a fused-kernel machine with the given page-cache
// regime; everything else is identical, so contents must be too.
func diffMachine(t *testing.T, regime vfs.Regime) *machine.Machine {
	t.Helper()
	m, err := machine.New(machine.Config{
		Model:        mem.Shared,
		OS:           machine.StramashOS,
		FileCache:    regime,
		Cores:        2,
		Sched:        kernel.SchedTimeSlice,
		SchedQuantum: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// diffWorkload is a deterministic cross-node read/write mix: two workers
// per node stamp disjoint ranges and stream the whole file, several
// rounds, under the time-slicing scheduler.
func diffWorkload(t *testing.T, m *machine.Machine) {
	t.Helper()
	const pages, rounds, workers = 8, 3, 4
	fileBytes := pages * mem.PageSize
	span := fileBytes / workers
	if _, err := m.RunSingle("setup", mem.NodeX86, func(tk *kernel.Task) error {
		if err := tk.Mkdir("/d"); err != nil {
			return err
		}
		fd, err := tk.CreateFile(diffPath)
		if err != nil {
			return err
		}
		buf := make([]byte, fileBytes)
		for i := range buf {
			buf[i] = byte(i >> 4)
		}
		if _, err := tk.WriteFileAt(fd, buf, 0); err != nil {
			return err
		}
		return tk.CloseFile(fd)
	}); err != nil {
		t.Fatal(err)
	}
	specs := make([]machine.TaskSpec, workers)
	for w := 0; w < workers; w++ {
		w := w
		specs[w] = machine.TaskSpec{
			Name:   fmt.Sprintf("w%d", w),
			Origin: mem.NodeID(w % 2),
			Core:   w / 2,
			Body: func(tk *kernel.Task) error {
				fd, err := tk.OpenFile(diffPath, vfs.ORDWR)
				if err != nil {
					return err
				}
				own := make([]byte, span)
				page := make([]byte, mem.PageSize)
				for r := 0; r < rounds; r++ {
					for i := range own {
						own[i] = byte(0x10*w + r)
					}
					if _, err := tk.WriteFileAt(fd, own, int64(w*span)); err != nil {
						return err
					}
					for off := 0; off < fileBytes; off += mem.PageSize {
						if _, err := tk.ReadFileAt(fd, page, int64(off)); err != nil {
							return err
						}
					}
				}
				return tk.CloseFile(fd)
			},
		}
	}
	if _, err := m.RunTasks(specs...); err != nil {
		t.Fatal(err)
	}
}

// diffContents reads the whole file back from the given node.
func diffContents(t *testing.T, m *machine.Machine, node mem.NodeID) []byte {
	t.Helper()
	var out []byte
	if _, err := m.RunSingle("read-"+node.String(), node, func(tk *kernel.Task) error {
		fd, err := tk.OpenFile(diffPath, vfs.ORead)
		if err != nil {
			return err
		}
		size, err := tk.FileSize(fd)
		if err != nil {
			return err
		}
		out = make([]byte, size)
		if _, err := tk.ReadFileAt(fd, out, 0); err != nil {
			return err
		}
		return tk.CloseFile(fd)
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDifferentialRegimeContents is the package invariant: for one
// deterministic schedule, the fused and popcorn page caches produce
// byte-identical file contents, observed from both nodes.
func TestDifferentialRegimeContents(t *testing.T) {
	var got [2][2][]byte // [regime][node]
	for i, regime := range []vfs.Regime{vfs.RegimeFused, vfs.RegimePopcorn} {
		m := diffMachine(t, regime)
		diffWorkload(t, m)
		got[i][0] = diffContents(t, m, mem.NodeX86)
		got[i][1] = diffContents(t, m, mem.NodeArm)
	}
	for n := 0; n < 2; n++ {
		if !bytes.Equal(got[0][n], got[1][n]) {
			t.Errorf("node %v: fused and popcorn contents differ", mem.NodeID(n))
		}
	}
	if !bytes.Equal(got[0][0], got[0][1]) {
		t.Errorf("fused: the two nodes read different contents")
	}
	if !bytes.Equal(got[1][0], got[1][1]) {
		t.Errorf("popcorn: the two nodes read different contents")
	}
}

// TestRegimeCycleSignatures checks the asymmetry the experiment's shape
// checks rely on: the same workload spends messaging cycles and DSM
// traffic only under popcorn.
func TestRegimeCycleSignatures(t *testing.T) {
	var stats [2]vfs.Stats
	for i, regime := range []vfs.Regime{vfs.RegimeFused, vfs.RegimePopcorn} {
		m := diffMachine(t, regime)
		diffWorkload(t, m)
		stats[i] = m.FileStats()
	}
	f, p := stats[0], stats[1]
	if f.TotalMsgCycles() != 0 {
		t.Errorf("fused regime spent %d messaging cycles, want 0", f.TotalMsgCycles())
	}
	if p.TotalMsgCycles() == 0 {
		t.Errorf("popcorn regime spent no messaging cycles")
	}
	if f.Writebacks[0]+f.Writebacks[1] != 0 || f.Invalidations[0]+f.Invalidations[1] != 0 {
		t.Errorf("fused regime produced DSM traffic: %+v", f)
	}
	if p.Writebacks[0]+p.Writebacks[1] == 0 {
		t.Errorf("popcorn regime produced no writebacks: %+v", p)
	}
	if p.Invalidations[0]+p.Invalidations[1] == 0 {
		t.Errorf("popcorn regime produced no invalidations: %+v", p)
	}
	if f.Hits[0]+f.Hits[1] == 0 || p.Hits[0]+p.Hits[1] == 0 {
		t.Errorf("a regime saw no page-cache hits: fused %+v popcorn %+v", f, p)
	}
}

// TestMmapSharesPageCacheFrames maps one file from both nodes and stores
// through the x86 mapping; the arm read must observe it through the cache
// coherence (fused) or DSM (popcorn) machinery, and a final read() must
// agree with the mmap view.
func TestMmapSharesPageCacheFrames(t *testing.T) {
	for _, regime := range []vfs.Regime{vfs.RegimeFused, vfs.RegimePopcorn} {
		t.Run(regime.String(), func(t *testing.T) {
			m := diffMachine(t, regime)
			const fileBytes = 4 * mem.PageSize
			if _, err := m.RunSingle("setup", mem.NodeX86, func(tk *kernel.Task) error {
				if err := tk.Mkdir("/d"); err != nil {
					return err
				}
				fd, err := tk.CreateFile(diffPath)
				if err != nil {
					return err
				}
				if _, err := tk.WriteFileAt(fd, make([]byte, fileBytes), 0); err != nil {
					return err
				}
				base, err := tk.MmapFile(fd, fileBytes, kernel.VMARead|kernel.VMAWrite, 0)
				if err != nil {
					return err
				}
				for pg := 0; pg < 4; pg++ {
					if err := tk.Store(base+pgtable.VirtAddr(pg*mem.PageSize), 8, uint64(0xC0DE+pg)); err != nil {
						return err
					}
				}
				return tk.CloseFile(fd)
			}); err != nil {
				t.Fatal(err)
			}
			if _, err := m.RunSingle("check", mem.NodeArm, func(tk *kernel.Task) error {
				fd, err := tk.OpenFile(diffPath, vfs.ORead)
				if err != nil {
					return err
				}
				base, err := tk.MmapFile(fd, fileBytes, kernel.VMARead, 0)
				if err != nil {
					return err
				}
				for pg := 0; pg < 4; pg++ {
					v, err := tk.Load(base+pgtable.VirtAddr(pg*mem.PageSize), 8)
					if err != nil {
						return err
					}
					if v != uint64(0xC0DE+pg) {
						return fmt.Errorf("mmap page %d reads %#x", pg, v)
					}
					buf := make([]byte, 8)
					if _, err := tk.ReadFileAt(fd, buf, int64(pg*mem.PageSize)); err != nil {
						return err
					}
				}
				return tk.CloseFile(fd)
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
