package vfs

import (
	"fmt"

	"repro/internal/cap"
)

// OpenFlags control Open/Create behavior and descriptor access mode.
type OpenFlags uint32

const (
	// ORead permits ReadAt/Read through the descriptor.
	ORead OpenFlags = 1 << iota
	// OWrite permits WriteAt/Write through the descriptor.
	OWrite
	// OCreate creates the file if it does not exist.
	OCreate
	// OTrunc drops existing contents on open.
	OTrunc
	// OAppend positions every write at end-of-file.
	OAppend
)

// ORDWR is the common read-write mode.
const ORDWR = ORead | OWrite

// File is one open-file description: an inode reference, the access mode,
// and a file offset shared by Read/Write. Socket descriptors live in the
// same table: they carry a kernel-side socket object in Sock instead of an
// inode (vfs stays transport-agnostic, so the field is opaque here).
type File struct {
	Ino   *Inode
	Flags OpenFlags
	Off   int64
	Sock  any
	// Cap is the handle capability this description is bound to (derived
	// at open/accept time from the grant that authorized it). 0 for root
	// tasks; the kernel's per-syscall handle gate checks it on tenant
	// tasks, so revoking the grant kills every descriptor under it.
	Cap cap.CapID
}

// FDTable is a task's descriptor table. Descriptors are small integers;
// Install reuses the lowest closed slot, like POSIX.
type FDTable struct {
	files []*File
}

// NewFDTable returns an empty descriptor table.
func NewFDTable() *FDTable { return &FDTable{} }

// Install places f in the lowest free slot and returns its descriptor.
func (t *FDTable) Install(f *File) int {
	for i, g := range t.files {
		if g == nil {
			t.files[i] = f
			return i
		}
	}
	t.files = append(t.files, f)
	return len(t.files) - 1
}

// Get resolves a descriptor.
func (t *FDTable) Get(fd int) (*File, error) {
	if fd < 0 || fd >= len(t.files) || t.files[fd] == nil {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return t.files[fd], nil
}

// Close releases a descriptor.
func (t *FDTable) Close(fd int) error {
	if _, err := t.Get(fd); err != nil {
		return err
	}
	t.files[fd] = nil
	return nil
}

// Open returns the number of live descriptors.
func (t *FDTable) Open() int {
	n := 0
	for _, f := range t.files {
		if f != nil {
			n++
		}
	}
	return n
}
