package vfs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hw"
	"repro/internal/mem"
)

// FS is the in-memory file system: a superblock worth of bookkeeping, an
// inode table, and a dentry tree. The structures themselves are host-side
// (like every kernel control structure in the reproduction), but lookups
// and mutations charge cache-line probes against a control page in
// simulated memory, so namespace traffic shows up in the timing model the
// same way VMA walks do.
type FS struct {
	ctrl    mem.PhysAddr
	root    *Inode
	byIno   map[int64]*Inode
	nextIno int64
	// counters for the superblock (host-side, deterministic).
	inodesLive int64
}

// Inode is one file or directory.
type Inode struct {
	Ino  int64
	Dir  bool
	Size int64
	// Home is the node whose kernel created the inode: in the popcorn
	// regime it owns the authoritative copy, and dirty pages are written
	// back to it by Sync.
	Home  mem.NodeID
	Nlink int

	name     string
	parent   *Inode
	children map[string]*Inode
	// appendBusy is the inode's append lock (see LockAppend).
	appendBusy bool
}

// RootIno is the root directory's inode number.
const RootIno = 1

// NewFS builds an empty file system whose charged control structures live
// at ctrl (one page).
func NewFS(ctrl mem.PhysAddr) *FS {
	root := &Inode{Ino: RootIno, Dir: true, Home: mem.NodeX86, Nlink: 2,
		name: "/", children: make(map[string]*Inode)}
	root.parent = root
	return &FS{
		ctrl:       ctrl,
		root:       root,
		byIno:      map[int64]*Inode{RootIno: root},
		nextIno:    RootIno + 1,
		inodesLive: 1,
	}
}

// Root returns the root directory inode.
func (fs *FS) Root() *Inode { return fs.root }

// ByIno looks an inode up by number (nil if absent).
func (fs *FS) ByIno(ino int64) *Inode { return fs.byIno[ino] }

// Live returns the number of live inodes (the superblock's usage count).
func (fs *FS) Live() int64 { return fs.inodesLive }

// Components splits path into its walk components. Empty components
// (repeated slashes) and "." disappear; ".." is preserved for the walk to
// resolve against real parents. Leading '/' is irrelevant — every path
// resolves from the filesystem root. The function is pure (no simulated
// cost), which is what FuzzVFSPath exercises.
func Components(path string) ([]string, error) {
	if len(path) > PathMax {
		return nil, ErrPathTooLong
	}
	if path == "" {
		return nil, fmt.Errorf("%w: empty path", ErrNotExist)
	}
	var comps []string
	for _, c := range strings.Split(path, "/") {
		switch c {
		case "", ".":
		default:
			if len(c) > NameMax {
				return nil, ErrNameTooLong
			}
			comps = append(comps, c)
		}
	}
	return comps, nil
}

// fnv32 hashes a dentry name (FNV-1a) for the charged hash-table probe.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// dentryProbe charges the hash-chain probe for one component lookup: two
// cache-line reads of the dentry hash table living on the control page.
func (fs *FS) dentryProbe(pt *hw.Port, name string) {
	line := int(fnv32(name)) % (mem.PageSize / mem.LineSize / 2)
	base := fs.ctrl + mem.PhysAddr(line*mem.LineSize)
	pt.ReadUint(base, 8)
	pt.ReadUint(base+mem.PhysAddr(mem.LineSize/2), 8)
}

// inodeTouch charges one cache-line access of the inode table slot.
func (fs *FS) inodeTouch(pt *hw.Port, ino int64, write bool) {
	slot := fs.ctrl + mem.PhysAddr(mem.PageSize/2) +
		mem.PhysAddr(int(ino)%(mem.PageSize/2/mem.LineSize)*mem.LineSize)
	if write {
		pt.WriteUint(slot, 8, uint64(ino))
	} else {
		pt.ReadUint(slot, 8)
	}
}

// Walk resolves path to an inode, charging one dentry probe per component.
func (fs *FS) Walk(pt *hw.Port, path string) (*Inode, error) {
	comps, err := Components(path)
	if err != nil {
		return nil, err
	}
	cur := fs.root
	for _, c := range comps {
		if !cur.Dir {
			return nil, fmt.Errorf("%w: %q in %q", ErrNotDir, cur.name, path)
		}
		if c == ".." {
			cur = cur.parent
			continue
		}
		fs.dentryProbe(pt, c)
		next, ok := cur.children[c]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotExist, path)
		}
		cur = next
	}
	return cur, nil
}

// WalkParent resolves everything but the final component, returning the
// parent directory and the final name. The final component must be a real
// name (not "", ".", or ".."), because it is about to be created/removed.
func (fs *FS) WalkParent(pt *hw.Port, path string) (*Inode, string, error) {
	comps, err := Components(path)
	if err != nil {
		return nil, "", err
	}
	if len(comps) == 0 {
		return nil, "", fmt.Errorf("%w: path %q has no final component", ErrInvalid, path)
	}
	last := comps[len(comps)-1]
	if last == ".." {
		return nil, "", fmt.Errorf("%w: path %q ends in ..", ErrInvalid, path)
	}
	cur := fs.root
	for _, c := range comps[:len(comps)-1] {
		if !cur.Dir {
			return nil, "", fmt.Errorf("%w: %q in %q", ErrNotDir, cur.name, path)
		}
		if c == ".." {
			cur = cur.parent
			continue
		}
		fs.dentryProbe(pt, c)
		next, ok := cur.children[c]
		if !ok {
			return nil, "", fmt.Errorf("%w: %q", ErrNotExist, path)
		}
		cur = next
	}
	if !cur.Dir {
		return nil, "", fmt.Errorf("%w: %q in %q", ErrNotDir, cur.name, path)
	}
	return cur, last, nil
}

// create links a new inode under parent. home records the creating kernel.
func (fs *FS) create(pt *hw.Port, parent *Inode, name string, dir bool, home mem.NodeID) (*Inode, error) {
	fs.dentryProbe(pt, name)
	if _, ok := parent.children[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExist, name)
	}
	ino := &Inode{
		Ino: fs.nextIno, Dir: dir, Home: home, Nlink: 1,
		name: name, parent: parent,
	}
	if dir {
		ino.Nlink = 2
		ino.children = make(map[string]*Inode)
	}
	fs.nextIno++
	fs.inodesLive++
	fs.byIno[ino.Ino] = ino
	parent.children[name] = ino
	// Charge the dentry insert and the inode-table slot initialization.
	fs.inodeTouch(pt, ino.Ino, true)
	fs.dentryInsertCost(pt, name)
	return ino, nil
}

// dentryInsertCost charges the hash-bucket write of a new dentry.
func (fs *FS) dentryInsertCost(pt *hw.Port, name string) {
	line := int(fnv32(name)) % (mem.PageSize / mem.LineSize / 2)
	pt.WriteUint(fs.ctrl+mem.PhysAddr(line*mem.LineSize), 8, uint64(len(name)))
}

// unlink removes name from parent and returns the detached inode. The
// caller is responsible for dropping its page-cache pages. Directories
// must be empty.
func (fs *FS) unlink(pt *hw.Port, parent *Inode, name string) (*Inode, error) {
	fs.dentryProbe(pt, name)
	ino, ok := parent.children[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	if ino.Dir && len(ino.children) > 0 {
		return nil, fmt.Errorf("%w: %q", ErrNotEmpty, name)
	}
	delete(parent.children, name)
	delete(fs.byIno, ino.Ino)
	fs.inodesLive--
	ino.Nlink = 0
	ino.parent = nil
	// Charge the dentry removal and inode-table release.
	fs.dentryInsertCost(pt, name)
	fs.inodeTouch(pt, ino.Ino, true)
	return ino, nil
}

// ReadDir returns the sorted child names of a directory (sorted so that
// callers iterating a directory stay deterministic).
func (fs *FS) ReadDir(pt *hw.Port, dir *Inode) ([]string, error) {
	if !dir.Dir {
		return nil, ErrNotDir
	}
	names := make([]string, 0, len(dir.children))
	for n := range dir.children {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fs.dentryProbe(pt, n)
	}
	return names, nil
}

// Path reconstructs the inode's absolute path (host-side, for messages).
func (fs *FS) Path(ino *Inode) string {
	if ino == fs.root {
		return "/"
	}
	var parts []string
	for cur := ino; cur != nil && cur != fs.root; cur = cur.parent {
		parts = append(parts, cur.name)
	}
	var sb strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		sb.WriteByte('/')
		sb.WriteString(parts[i])
	}
	return sb.String()
}
