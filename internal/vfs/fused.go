package vfs

import (
	"repro/internal/cap"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/trace"
)

// pagePool is the fused cache's CXL shared-pool frame allocator: a bump
// pointer with a free list over the region the machine builder carved out
// of the shared pool (after the messaging area). It is deliberately tiny —
// the tiering decision (CXL first, DDR fallback) is the interesting part.
type pagePool struct {
	next mem.PhysAddr
	end  mem.PhysAddr
	free []mem.PhysAddr
}

func newPagePool(base mem.PhysAddr, size uint64) *pagePool {
	if size == 0 {
		return nil
	}
	return &pagePool{next: base, end: base + mem.PhysAddr(size)}
}

func (p *pagePool) alloc() (mem.PhysAddr, bool) {
	if n := len(p.free); n > 0 {
		pa := p.free[n-1]
		p.free = p.free[:n-1]
		return pa, true
	}
	if p.next+mem.PageSize <= p.end {
		pa := p.next
		p.next += mem.PageSize
		return pa, true
	}
	return 0, false
}

func (p *pagePool) release(pa mem.PhysAddr) { p.free = append(p.free, pa) }

// FusedCache is the Stramash-regime page cache: one shared set of frames
// that both kernels address directly. A page faults in exactly once,
// preferentially into the CXL shared pool; after that every node's access
// is a hit, and cross-node traffic is carried by the hardware coherence
// protocol (CXL snoops), never by kernel messages.
type FusedCache struct {
	frames map[pageKey]mem.PhysAddr
	// fromPool records pool-tier frames; others carry their DDR owner so
	// Drop can return them to the right buddy allocator.
	fromPool map[pageKey]bool
	owner    map[pageKey]mem.NodeID
	// chargedTo records which tenant's CacheFrames budget each resident
	// frame was charged against, so Drop can return the charge.
	chargedTo map[pageKey]*cap.Tenant
	// perIno keeps each inode's page indexes in insertion order (which is
	// simulation-deterministic), so Drop never iterates a Go map.
	perIno map[int64][]int64

	pool      *pagePool
	local     LocalAlloc
	freeLocal LocalFree
	busy      map[pageKey]bool
	stats     *Stats
	tracer    trace.Tracer
	hook      InvalidateHook
}

func newFusedCache(cfg Config, stats *Stats) *FusedCache {
	return &FusedCache{
		frames:    make(map[pageKey]mem.PhysAddr),
		fromPool:  make(map[pageKey]bool),
		owner:     make(map[pageKey]mem.NodeID),
		chargedTo: make(map[pageKey]*cap.Tenant),
		perIno:    make(map[int64][]int64),
		pool:      newPagePool(cfg.PoolBase, cfg.PoolSize),
		local:     cfg.Local,
		freeLocal: cfg.FreeLocal,
		busy:      make(map[pageKey]bool),
		stats:     stats,
		tracer:    cfg.Tracer,
	}
}

// Regime implements PageCache.
func (c *FusedCache) Regime() Regime { return RegimeFused }

// SetInvalidateHook implements PageCache.
func (c *FusedCache) SetInvalidateHook(h InvalidateHook) { c.hook = h }

// Frame implements PageCache: any node's hit returns the one shared frame.
func (c *FusedCache) Frame(pt *hw.Port, ten *cap.Tenant, ino *Inode, idx int64, write bool) (mem.PhysAddr, error) {
	k := pageKey{ino.Ino, idx}
	pt.T.Advance(lookupCost)
	lockPage(pt, c.busy, k)
	defer unlockPage(c.busy, k)
	if f, ok := c.frames[k]; ok {
		c.stats.Hits[pt.Node]++
		emitPC(c.tracer, pt, trace.KindPageCacheHit, pt.Node, ino.Ino, idx, f)
		return f, nil
	}
	c.stats.Misses[pt.Node]++
	// A miss allocates the page's only frame; it is charged to the faulting
	// tenant before any allocation so a refused charge leaves no residue.
	// Hits are free regardless of who faulted the page in — the fused pool
	// is one shared cache, and the budget bounds what a tenant can force
	// INTO it, which is exactly the noisy-neighbor lever.
	if err := ten.ChargeCache(1); err != nil {
		emitPC(c.tracer, pt, trace.KindQuotaHit, pt.Node, ino.Ino, idx, 0)
		return 0, err
	}
	var frame mem.PhysAddr
	if c.pool != nil {
		if pa, ok := c.pool.alloc(); ok {
			pt.T.Advance(allocCost)
			pt.ZeroPage(pa)
			c.fromPool[k] = true
			frame = pa
		}
	}
	if frame == 0 {
		pa, err := c.local(pt, pt.Node)
		if err != nil {
			ten.UnchargeCache(1)
			return 0, err
		}
		c.owner[k] = pt.Node
		frame = pa
	}
	if ten != nil {
		c.chargedTo[k] = ten
	}
	c.frames[k] = frame
	c.perIno[ino.Ino] = append(c.perIno[ino.Ino], idx)
	emitPC(c.tracer, pt, trace.KindPageCacheMiss, pt.Node, ino.Ino, idx, frame)
	return frame, nil
}

// Sync implements PageCache: shared memory is authoritative, so there is
// nothing to flush — the fused design's whole point. The call itself is
// still counted, so persistence workloads can prove their fsync policy
// ran under both regimes.
func (c *FusedCache) Sync(pt *hw.Port, ino *Inode) error {
	c.stats.Syncs[pt.Node]++
	return nil
}

// Drop implements PageCache: unmap every task mapping on both nodes and
// free the frames. No messages — the fused kernel writes the other node's
// page tables directly.
func (c *FusedCache) Drop(pt *hw.Port, ino *Inode) error {
	for _, idx := range c.perIno[ino.Ino] {
		k := pageKey{ino.Ino, idx}
		lockPage(pt, c.busy, k)
		frame, ok := c.frames[k]
		if !ok {
			unlockPage(c.busy, k)
			continue
		}
		if c.hook != nil {
			c.hook(pt, ino.Ino, idx, mem.NodeX86, false)
			c.hook(pt, ino.Ino, idx, mem.NodeArm, false)
		}
		if c.fromPool[k] {
			c.pool.release(frame)
			pt.T.Advance(allocCost)
			delete(c.fromPool, k)
		} else {
			if err := c.freeLocal(pt, c.owner[k], frame); err != nil {
				unlockPage(c.busy, k)
				return err
			}
			delete(c.owner, k)
		}
		if ten := c.chargedTo[k]; ten != nil {
			ten.UnchargeCache(1)
			delete(c.chargedTo, k)
		}
		delete(c.frames, k)
		c.stats.Invalidations[pt.Node]++
		emitPC(c.tracer, pt, trace.KindPageCacheInvalidate, pt.Node, ino.Ino, idx, frame)
		unlockPage(c.busy, k)
	}
	delete(c.perIno, ino.Ino)
	return nil
}
