package vfs

import (
	"path"
	"strings"
	"testing"
)

// FuzzVFSPath drives Components with adversarial path strings and checks
// it against the stdlib's path.Clean as an oracle: resolving the returned
// components with a plain ".." stack must land on exactly the absolute
// path Clean computes. This pins down the splitting rules (repeated
// slashes, ".", "..", trailing slashes) independently of the charged walk.
func FuzzVFSPath(f *testing.F) {
	for _, seed := range []string{
		"/", "//", "/a/b/c", "a/b/c/", "/a//b", "/a/./b", "/a/../b",
		"..", "/..", "/../..", "/a/b/../../c", "./a/.", "/a/b/.././//c/..",
		"", "/" + strings.Repeat("x", NameMax) + "/y",
		strings.Repeat("a/", 64), "/.hidden/..d/...",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, p string) {
		comps, err := Components(p)
		if err != nil {
			// Errors must only arise from the three defined conditions.
			if p != "" && len(p) <= PathMax && longestComponent(p) <= NameMax {
				t.Fatalf("Components(%q) unexpected error: %v", p, err)
			}
			return
		}
		var stack []string
		for _, c := range comps {
			switch c {
			case "", ".":
				t.Fatalf("Components(%q) leaked component %q", p, c)
			case "..":
				if len(stack) > 0 {
					stack = stack[:len(stack)-1]
				}
			default:
				if strings.Contains(c, "/") {
					t.Fatalf("Components(%q) leaked a slash in %q", p, c)
				}
				stack = append(stack, c)
			}
		}
		got := "/" + strings.Join(stack, "/")
		want := path.Clean("/" + p)
		if got != want {
			t.Fatalf("Components(%q) resolves to %q, path.Clean gives %q", p, got, want)
		}
	})
}

func longestComponent(p string) int {
	max := 0
	for _, c := range strings.Split(p, "/") {
		if c != "" && c != "." && len(c) > max {
			max = len(c)
		}
	}
	return max
}
