package vfs

import (
	"fmt"
	"io"

	"repro/internal/cap"
	"repro/internal/hw"
	"repro/internal/interconnect"
	"repro/internal/mem"
	"repro/internal/trace"
)

// LocalAlloc allocates one zeroed frame from node's kernel DDR allocator,
// charging pt. LocalFree returns such a frame.
type (
	LocalAlloc func(pt *hw.Port, node mem.NodeID) (mem.PhysAddr, error)
	LocalFree  func(pt *hw.Port, node mem.NodeID, pa mem.PhysAddr) error
)

// Config assembles a Mount. The machine builder fills it in: the kernels'
// allocators arrive as closures so vfs stays below internal/kernel in the
// import order.
type Config struct {
	// Regime must be RegimeFused or RegimePopcorn (the machine resolves
	// RegimeAuto from the OS personality before building the mount).
	Regime Regime
	// CtrlPage backs the charged dentry/inode structure probes.
	CtrlPage mem.PhysAddr
	// Local and FreeLocal reach the per-node kernel page allocators.
	Local     LocalAlloc
	FreeLocal LocalFree
	// PoolBase/PoolSize describe the CXL shared-pool tier for the fused
	// page cache; PoolSize 0 means the model has no shared pool and fused
	// frames fall back to the first toucher's DDR.
	PoolBase mem.PhysAddr
	PoolSize uint64
	// Msgr carries DSM coherence and namespace traffic in the popcorn
	// regime (required there, ignored by fused).
	Msgr *interconnect.Messenger
	// Home is the kernel that owns the authoritative namespace in the
	// popcorn regime (defaults to NodeX86, where the first kernel boots).
	Home mem.NodeID
	// Tracer receives page-cache events (nil disables tracing).
	Tracer trace.Tracer
}

// Mount is one mounted file system: the namespace plus its page cache.
type Mount struct {
	FS     *FS
	Cache  PageCache
	Regime Regime
	Home   mem.NodeID

	msgr   *interconnect.Messenger
	tracer trace.Tracer
	stats  *Stats
	// metaSeen marks inodes whose dentry/inode metadata a non-home node
	// has already replicated (popcorn regime), like the popcorn VMA
	// replication flags: the first lookup pays an RPC, later ones are
	// local.
	metaSeen [2]map[int64]bool
}

// NewMount builds the file system and the page cache for cfg's regime.
func NewMount(cfg Config) (*Mount, error) {
	if cfg.Local == nil || cfg.FreeLocal == nil {
		return nil, fmt.Errorf("vfs: config needs Local and FreeLocal allocators")
	}
	stats := &Stats{}
	m := &Mount{
		FS:     NewFS(cfg.CtrlPage),
		Regime: cfg.Regime,
		Home:   cfg.Home,
		msgr:   cfg.Msgr,
		tracer: cfg.Tracer,
		stats:  stats,
		metaSeen: [2]map[int64]bool{
			make(map[int64]bool), make(map[int64]bool),
		},
	}
	switch cfg.Regime {
	case RegimeFused:
		m.Cache = newFusedCache(cfg, stats)
	case RegimePopcorn:
		if cfg.Msgr == nil {
			return nil, fmt.Errorf("vfs: popcorn regime needs a messenger")
		}
		m.Cache = newPopcornCache(cfg, stats)
	default:
		return nil, fmt.Errorf("vfs: regime %v not resolved", cfg.Regime)
	}
	return m, nil
}

// Stats returns a snapshot of the page-cache counters.
func (m *Mount) Stats() Stats { return *m.stats }

// rpc runs one messenger round trip, accounting its cycles to the
// requesting node's messaging bucket.
func (m *Mount) rpc(pt *hw.Port, handler func(remote *hw.Port, req []byte) []byte, req []byte) []byte {
	start := pt.T.Now()
	resp := m.msgr.RPC(pt, handler, req)
	m.stats.MsgCycles[pt.Node] += pt.T.Now() - start
	return resp
}

// metaArrive replicates an inode's metadata to pt's node on first contact
// in the popcorn regime: one RPC to the home kernel, whose service routine
// walks the authoritative dentry/inode structures.
func (m *Mount) metaArrive(pt *hw.Port, ino *Inode) {
	if m.Regime != RegimePopcorn || pt.Node == m.Home {
		return
	}
	if m.metaSeen[pt.Node][ino.Ino] {
		return
	}
	m.metaSeen[pt.Node][ino.Ino] = true
	m.stats.MetaRPCs++
	m.rpc(pt, func(remote *hw.Port, req []byte) []byte {
		m.FS.inodeTouch(remote, ino.Ino, false)
		return make([]byte, 64)
	}, make([]byte, 64))
}

// Resolve walks path to an inode, paying the regime's metadata costs.
func (m *Mount) Resolve(pt *hw.Port, path string) (*Inode, error) {
	ino, err := m.FS.Walk(pt, path)
	if err != nil {
		return nil, err
	}
	m.metaArrive(pt, ino)
	return ino, nil
}

// Create makes a file (or directory) at path. In the popcorn regime a
// non-home kernel forwards the mutation to the home kernel's namespace
// service by RPC; the fused kernel mutates the shared structures directly.
func (m *Mount) Create(pt *hw.Port, path string, dir bool) (*Inode, error) {
	parent, name, err := m.FS.WalkParent(pt, path)
	if err != nil {
		return nil, err
	}
	if m.Regime == RegimePopcorn && pt.Node != m.Home {
		var ino *Inode
		var cerr error
		m.stats.MetaRPCs++
		m.rpc(pt, func(remote *hw.Port, req []byte) []byte {
			ino, cerr = m.FS.create(remote, parent, name, dir, pt.Node)
			return make([]byte, 64)
		}, make([]byte, 64+len(path)))
		if cerr != nil {
			return nil, cerr
		}
		m.metaSeen[pt.Node][ino.Ino] = true
		return ino, nil
	}
	return m.FS.create(pt, parent, name, dir, pt.Node)
}

// Unlink removes path and drops its cached pages (both regimes invalidate
// every cached copy; popcorn pays messages to reach the peer's cache).
func (m *Mount) Unlink(pt *hw.Port, path string) error {
	parent, name, err := m.FS.WalkParent(pt, path)
	if err != nil {
		return err
	}
	var ino *Inode
	if m.Regime == RegimePopcorn && pt.Node != m.Home {
		var uerr error
		m.stats.MetaRPCs++
		m.rpc(pt, func(remote *hw.Port, req []byte) []byte {
			ino, uerr = m.FS.unlink(remote, parent, name)
			return make([]byte, 64)
		}, make([]byte, 64+len(path)))
		if uerr != nil {
			return uerr
		}
	} else {
		ino, err = m.FS.unlink(pt, parent, name)
		if err != nil {
			return err
		}
	}
	if !ino.Dir {
		return m.Cache.Drop(pt, ino)
	}
	return nil
}

// Truncate drops contents beyond size (only full truncation to zero drops
// pages; partial truncation just moves the size).
func (m *Mount) Truncate(pt *hw.Port, ino *Inode, size int64) error {
	if ino.Dir {
		return ErrIsDir
	}
	if size < 0 {
		return ErrInvalid
	}
	if size == 0 && ino.Size > 0 {
		if err := m.Cache.Drop(pt, ino); err != nil {
			return err
		}
	}
	ino.Size = size
	m.FS.inodeTouch(pt, ino.Ino, true)
	return nil
}

// ReadAt copies up to len(p) bytes from ino at off through the page cache.
// It returns the bytes read; a read starting at or past EOF returns
// (0, io.EOF), and a read crossing EOF returns short without error. ten
// is the tenant page-cache misses are charged to (nil = root).
func (m *Mount) ReadAt(pt *hw.Port, ten *cap.Tenant, ino *Inode, p []byte, off int64) (int, error) {
	if ino.Dir {
		return 0, ErrIsDir
	}
	if off < 0 {
		return 0, ErrInvalid
	}
	if off >= ino.Size {
		return 0, io.EOF
	}
	n := len(p)
	if off+int64(n) > ino.Size {
		n = int(ino.Size - off)
	}
	done := 0
	for done < n {
		pos := off + int64(done)
		idx := pos >> mem.PageShift
		pageOff := int(pos & (mem.PageSize - 1))
		chunk := mem.PageSize - pageOff
		if chunk > n-done {
			chunk = n - done
		}
		frame, err := m.Cache.Frame(pt, ten, ino, idx, false)
		if err != nil {
			return done, err
		}
		copy(p[done:done+chunk], pt.Read(frame+mem.PhysAddr(pageOff), chunk))
		done += chunk
	}
	return n, nil
}

// WriteAt copies p into ino at off through the page cache, extending the
// file as needed. ten is the tenant page-cache misses are charged to.
func (m *Mount) WriteAt(pt *hw.Port, ten *cap.Tenant, ino *Inode, p []byte, off int64) (int, error) {
	if ino.Dir {
		return 0, ErrIsDir
	}
	if off < 0 {
		return 0, ErrInvalid
	}
	done := 0
	for done < len(p) {
		pos := off + int64(done)
		idx := pos >> mem.PageShift
		pageOff := int(pos & (mem.PageSize - 1))
		chunk := mem.PageSize - pageOff
		if chunk > len(p)-done {
			chunk = len(p) - done
		}
		frame, err := m.Cache.Frame(pt, ten, ino, idx, true)
		if err != nil {
			return done, err
		}
		pt.Write(frame+mem.PhysAddr(pageOff), p[done:done+chunk])
		done += chunk
	}
	if end := off + int64(len(p)); end > ino.Size {
		ino.Size = end
		m.FS.inodeTouch(pt, ino.Ino, true)
	}
	return len(p), nil
}
