package vfs

import (
	"encoding/binary"

	"repro/internal/cap"
	"repro/internal/hw"
	"repro/internal/interconnect"
	"repro/internal/mem"
	"repro/internal/trace"
)

// cstate is a node's coherence state for one cached file page, the
// Popcorn DSM invalid/shared/exclusive protocol applied to the page cache.
type cstate uint8

const (
	csInvalid cstate = iota
	csShared
	csExclusive
)

// pcPage is one file page replicated across the two kernels' caches.
type pcPage struct {
	frames [2]mem.PhysAddr
	state  [2]cstate
	// dirty marks the exclusive owner's copy as modified since the last
	// writeback; a read-fetch by the other node or a Sync clears it.
	dirty bool
}

// popcorn cache wire ops (first byte of every message).
const (
	pcOpFetch      = 1 // read miss: send me the page, downgrade E -> S
	pcOpFetchSteal = 2 // write miss: send me the page, invalidate your copy
	pcOpInvalidate = 3 // write upgrade: drop your shared copy
	pcOpWriteback  = 4 // fsync: here is the dirty page, install at home
	pcOpDrop       = 5 // unlink: free all your replicas of this inode
)

// pcReq encodes a coherence request header (64 bytes, one ring slot's
// header worth, matching the popcorn kernel's message framing).
func pcReq(op byte, ino, idx int64, payload int) []byte {
	b := make([]byte, 64+payload)
	b[0] = op
	binary.LittleEndian.PutUint64(b[8:], uint64(ino))
	binary.LittleEndian.PutUint64(b[16:], uint64(idx))
	return b
}

// PopcornCache is the multiple-kernel baseline: each kernel caches file
// pages in its own DDR, and coherence travels as messages over the ring
// buffer + IPI doorbell interconnect (with the messenger's built-in
// ring-full retry). Every cross-node sharing event costs a full RPC round
// trip plus, for content moves, a page-sized payload.
type PopcornCache struct {
	pages  map[pageKey]*pcPage
	perIno map[int64][]int64
	// charged records, per node, the tenant whose CacheFrames budget each
	// local replica was charged against. A tenant whose access replicates a
	// page on both kernels pays for both replicas — the multiple-kernel
	// regime's memory amplification, surfaced in the budget.
	charged [2]map[pageKey]*cap.Tenant

	msgr      *interconnect.Messenger
	local     LocalAlloc
	freeLocal LocalFree
	busy      map[pageKey]bool
	stats     *Stats
	tracer    trace.Tracer
	hook      InvalidateHook
}

func newPopcornCache(cfg Config, stats *Stats) *PopcornCache {
	return &PopcornCache{
		pages:  make(map[pageKey]*pcPage),
		perIno: make(map[int64][]int64),
		charged: [2]map[pageKey]*cap.Tenant{
			make(map[pageKey]*cap.Tenant), make(map[pageKey]*cap.Tenant),
		},
		msgr:      cfg.Msgr,
		local:     cfg.Local,
		freeLocal: cfg.FreeLocal,
		busy:      make(map[pageKey]bool),
		stats:     stats,
		tracer:    cfg.Tracer,
	}
}

// Regime implements PageCache.
func (c *PopcornCache) Regime() Regime { return RegimePopcorn }

// SetInvalidateHook implements PageCache.
func (c *PopcornCache) SetInvalidateHook(h InvalidateHook) { c.hook = h }

// rpc runs one coherence round trip, billing its cycles to the requesting
// node's messaging bucket.
func (c *PopcornCache) rpc(pt *hw.Port, handler func(remote *hw.Port, req []byte) []byte, req []byte) {
	start := pt.T.Now()
	c.msgr.RPC(pt, handler, req)
	c.stats.MsgCycles[pt.Node] += pt.T.Now() - start
}

// Frame implements PageCache: the full DSM state machine. Each local
// replica a tenant's access allocates is charged against its CacheFrames
// budget (and returned when Drop frees the replica).
func (c *PopcornCache) Frame(pt *hw.Port, ten *cap.Tenant, ino *Inode, idx int64, write bool) (mem.PhysAddr, error) {
	n := pt.Node
	k := pageKey{ino.Ino, idx}
	pt.T.Advance(lookupCost)
	lockPage(pt, c.busy, k)
	defer unlockPage(c.busy, k)

	pg := c.pages[k]
	if pg == nil {
		// First touch anywhere: a local zeroed frame, exclusively owned.
		c.stats.Misses[n]++
		if err := ten.ChargeCache(1); err != nil {
			emitPC(c.tracer, pt, trace.KindQuotaHit, n, ino.Ino, idx, 0)
			return 0, err
		}
		frame, err := c.local(pt, n)
		if err != nil {
			ten.UnchargeCache(1)
			return 0, err
		}
		if ten != nil {
			c.charged[n][k] = ten
		}
		pg = &pcPage{dirty: write}
		pg.frames[n] = frame
		pg.state[n] = csExclusive
		c.pages[k] = pg
		c.perIno[ino.Ino] = append(c.perIno[ino.Ino], idx)
		emitPC(c.tracer, pt, trace.KindPageCacheMiss, n, ino.Ino, idx, frame)
		return frame, nil
	}

	if !write {
		if pg.state[n] != csInvalid {
			c.stats.Hits[n]++
			emitPC(c.tracer, pt, trace.KindPageCacheHit, n, ino.Ino, idx, pg.frames[n])
			return pg.frames[n], nil
		}
		c.stats.Misses[n]++
		if err := c.fetch(pt, ten, ino, idx, pg, false); err != nil {
			return 0, err
		}
		pg.state[n] = csShared
		emitPC(c.tracer, pt, trace.KindPageCacheMiss, n, ino.Ino, idx, pg.frames[n])
		return pg.frames[n], nil
	}

	switch pg.state[n] {
	case csExclusive:
		c.stats.Hits[n]++
		pg.dirty = true
		emitPC(c.tracer, pt, trace.KindPageCacheHit, n, ino.Ino, idx, pg.frames[n])
		return pg.frames[n], nil
	case csShared:
		// Write upgrade: invalidate the peer's shared copy by message.
		c.stats.Hits[n]++
		if p := other(n); pg.state[p] != csInvalid {
			c.invalidatePeer(pt, ino, idx, pg)
		}
		pg.state[n] = csExclusive
		pg.dirty = true
		emitPC(c.tracer, pt, trace.KindPageCacheHit, n, ino.Ino, idx, pg.frames[n])
		return pg.frames[n], nil
	default:
		// Write miss: fetch the content and steal exclusive ownership.
		c.stats.Misses[n]++
		if err := c.fetch(pt, ten, ino, idx, pg, true); err != nil {
			return 0, err
		}
		pg.state[n] = csExclusive
		pg.dirty = true
		emitPC(c.tracer, pt, trace.KindPageCacheMiss, n, ino.Ino, idx, pg.frames[n])
		return pg.frames[n], nil
	}
}

func other(n mem.NodeID) mem.NodeID { return mem.NodeID(1 - int(n)) }

// fetch pulls the page content from the peer's cache by RPC (2 messages +
// page payload) into a local frame. steal invalidates the peer's copy
// (write miss); otherwise an exclusive peer downgrades to shared, and if
// it was dirty the transfer doubles as the writeback.
func (c *PopcornCache) fetch(pt *hw.Port, ten *cap.Tenant, ino *Inode, idx int64, pg *pcPage, steal bool) error {
	n := pt.Node
	p := other(n)
	k := pageKey{ino.Ino, idx}
	if pg.frames[n] == 0 {
		if err := ten.ChargeCache(1); err != nil {
			emitPC(c.tracer, pt, trace.KindQuotaHit, n, ino.Ino, idx, 0)
			return err
		}
		frame, err := c.local(pt, n)
		if err != nil {
			ten.UnchargeCache(1)
			return err
		}
		if ten != nil {
			c.charged[n][k] = ten
		}
		pg.frames[n] = frame
	}
	if pg.state[p] == csInvalid {
		// No valid copy anywhere (the page was dropped while we slept on
		// the lock): the zeroed local frame is authoritative.
		return nil
	}
	op := byte(pcOpFetch)
	if steal {
		op = pcOpFetchSteal
	}
	c.rpc(pt, func(remote *hw.Port, req []byte) []byte {
		resp := make([]byte, 64+mem.PageSize)
		copy(resp[64:], remote.Read(pg.frames[p], mem.PageSize))
		if steal {
			if c.hook != nil {
				c.hook(remote, ino.Ino, idx, p, false)
			}
			pg.state[p] = csInvalid
			c.stats.Invalidations[p]++
			emitPC(c.tracer, remote, trace.KindPageCacheInvalidate, p, ino.Ino, idx, pg.frames[p])
		} else if pg.state[p] == csExclusive {
			if c.hook != nil {
				c.hook(remote, ino.Ino, idx, p, true)
			}
			pg.state[p] = csShared
			if pg.dirty {
				// The downgrade flushes the owner's dirty data: the copy
				// travelling in this response is the writeback.
				pg.dirty = false
				c.stats.Writebacks[p]++
				emitPC(c.tracer, remote, trace.KindPageCacheWriteback, p, ino.Ino, idx, pg.frames[p])
			}
		}
		return resp
	}, pcReq(op, ino.Ino, idx, 0))
	// The payload travelled through the charged message channel; install
	// it into the local replica (write side only, like DSM replication).
	pt.InstallPage(pg.frames[n], pg.frames[p])
	return nil
}

// invalidatePeer drops the peer's shared copy by message (write upgrade).
func (c *PopcornCache) invalidatePeer(pt *hw.Port, ino *Inode, idx int64, pg *pcPage) {
	p := other(pt.Node)
	c.rpc(pt, func(remote *hw.Port, req []byte) []byte {
		if c.hook != nil {
			c.hook(remote, ino.Ino, idx, p, false)
		}
		pg.state[p] = csInvalid
		c.stats.Invalidations[p]++
		emitPC(c.tracer, remote, trace.KindPageCacheInvalidate, p, ino.Ino, idx, pg.frames[p])
		return make([]byte, 64)
	}, pcReq(pcOpInvalidate, ino.Ino, idx, 0))
}

// Sync implements PageCache: push every dirty page the calling node owns
// exclusively back to the inode's home kernel (2 messages + page payload
// each). The local copy downgrades to shared, mirroring a writeback that
// leaves the page clean in both caches.
func (c *PopcornCache) Sync(pt *hw.Port, ino *Inode) error {
	n := pt.Node
	home := ino.Home
	c.stats.Syncs[n]++
	for _, idx := range c.perIno[ino.Ino] {
		k := pageKey{ino.Ino, idx}
		pg := c.pages[k]
		if pg == nil || !pg.dirty || pg.state[n] != csExclusive {
			continue
		}
		if home == n {
			// The authoritative kernel already holds the dirty data; a
			// local flush involves no messages.
			pg.dirty = false
			continue
		}
		lockPage(pt, c.busy, k)
		if !pg.dirty || pg.state[n] != csExclusive { // re-check under the lock
			unlockPage(c.busy, k)
			continue
		}
		var syncErr error
		c.rpc(pt, func(remote *hw.Port, req []byte) []byte {
			if pg.frames[home] == 0 {
				frame, err := c.local(remote, home)
				if err != nil {
					syncErr = err
					return make([]byte, 64)
				}
				pg.frames[home] = frame
			}
			remote.InstallPage(pg.frames[home], pg.frames[n])
			pg.state[home] = csShared
			return make([]byte, 64)
		}, pcReq(pcOpWriteback, ino.Ino, idx, mem.PageSize))
		if syncErr != nil {
			unlockPage(c.busy, k)
			return syncErr
		}
		if c.hook != nil {
			c.hook(pt, ino.Ino, idx, n, true)
		}
		pg.state[n] = csShared
		pg.dirty = false
		c.stats.Writebacks[n]++
		emitPC(c.tracer, pt, trace.KindPageCacheWriteback, n, ino.Ino, idx, pg.frames[n])
		unlockPage(c.busy, k)
	}
	return nil
}

// Drop implements PageCache: free the local replicas directly, and if the
// peer kernel holds any, tell it to free them with one RPC (unlink is a
// namespace broadcast in a multiple-kernel OS).
func (c *PopcornCache) Drop(pt *hw.Port, ino *Inode) error {
	n := pt.Node
	p := other(n)
	type peerPage struct {
		idx   int64
		pg    *pcPage
		frame mem.PhysAddr
	}
	var peerHeld []peerPage
	for _, idx := range c.perIno[ino.Ino] {
		k := pageKey{ino.Ino, idx}
		pg := c.pages[k]
		if pg == nil {
			continue
		}
		lockPage(pt, c.busy, k)
		if pg.frames[n] != 0 {
			if c.hook != nil {
				c.hook(pt, ino.Ino, idx, n, false)
			}
			frame := pg.frames[n]
			if err := c.freeLocal(pt, n, frame); err != nil {
				unlockPage(c.busy, k)
				return err
			}
			if ten := c.charged[n][k]; ten != nil {
				ten.UnchargeCache(1)
				delete(c.charged[n], k)
			}
			pg.frames[n] = 0
			pg.state[n] = csInvalid
			c.stats.Invalidations[n]++
			emitPC(c.tracer, pt, trace.KindPageCacheInvalidate, n, ino.Ino, idx, frame)
		}
		if pg.frames[p] != 0 {
			peerHeld = append(peerHeld, peerPage{idx, pg, pg.frames[p]})
		} else {
			delete(c.pages, k)
		}
		unlockPage(c.busy, k)
	}
	if len(peerHeld) > 0 {
		c.rpc(pt, func(remote *hw.Port, req []byte) []byte {
			for _, ph := range peerHeld {
				if c.hook != nil {
					c.hook(remote, ino.Ino, ph.idx, p, false)
				}
				if err := c.freeLocal(remote, p, ph.frame); err != nil {
					continue
				}
				if ten := c.charged[p][pageKey{ino.Ino, ph.idx}]; ten != nil {
					ten.UnchargeCache(1)
					delete(c.charged[p], pageKey{ino.Ino, ph.idx})
				}
				ph.pg.frames[p] = 0
				ph.pg.state[p] = csInvalid
				c.stats.Invalidations[p]++
				emitPC(c.tracer, remote, trace.KindPageCacheInvalidate, p, ino.Ino, ph.idx, ph.frame)
				delete(c.pages, pageKey{ino.Ino, ph.idx})
			}
			return make([]byte, 64)
		}, pcReq(pcOpDrop, ino.Ino, 0, 0))
	}
	delete(c.perIno, ino.Ino)
	return nil
}
