// Package vfs is the reproduction's in-memory, deterministic virtual file
// system: a superblock, inodes, a dentry layer with charged hash-probe
// lookups, per-task open-file descriptors, and a page cache whose data
// pages live in simulated physical memory. Every read, write, and
// mmap-style access moves real bytes through the existing translation +
// cache + MESI/CXL timing path, so file I/O costs real simulated cycles.
//
// The page cache comes in two coherence regimes behind one interface,
// mirroring the paper's central comparison:
//
//   - Fused (Stramash): one shared page cache. Both ISAs map and access
//     the same frames — preferentially placed in the CXL shared pool —
//     and cross-node access pays CXL snoop costs through the hardware
//     hierarchy. No kernel-to-kernel messages are ever needed.
//   - Popcorn: per-kernel page caches kept coherent by DSM-style
//     invalidate/writeback messages over the ring-buffer + IPI doorbell
//     interconnect (including the ring-full retry path), exactly like the
//     anonymous-page DSM in internal/popcorn.
//
// Invariant (guarded by the differential test): for any deterministic
// schedule, both regimes return byte-identical file contents on both
// nodes — they differ only in where the cycles go.
package vfs

import (
	"errors"

	"repro/internal/cap"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Regime selects the page-cache coherence protocol.
type Regime int

const (
	// RegimeAuto lets the machine builder derive the regime from the OS
	// personality (fused kernels share, multiple kernels replicate).
	RegimeAuto Regime = iota
	// RegimeFused is one shared page cache in shared memory.
	RegimeFused
	// RegimePopcorn is per-kernel page caches with DSM messaging.
	RegimePopcorn
)

func (r Regime) String() string {
	switch r {
	case RegimeFused:
		return "fused"
	case RegimePopcorn:
		return "popcorn"
	}
	return "auto"
}

// Namespace and path limits (POSIX-shaped).
const (
	// NameMax is the longest single path component.
	NameMax = 255
	// PathMax is the longest accepted path string.
	PathMax = 4096
)

// Protocol cost constants, in cycles, for work the simulated memory system
// cannot naturally express (host-side radix/map walks standing in for
// kernel structures).
const (
	// lookupCost is the page-cache radix walk per Frame call.
	lookupCost = 60
	// allocCost mirrors kernel.AllocCost for pool-tier page allocations.
	allocCost = 150
	// busySpinCost is one backoff step on a contended page lock.
	busySpinCost = 120
)

// Errors returned by namespace and descriptor operations.
var (
	ErrNotExist    = errors.New("vfs: no such file or directory")
	ErrExist       = errors.New("vfs: file exists")
	ErrNotDir      = errors.New("vfs: not a directory")
	ErrIsDir       = errors.New("vfs: is a directory")
	ErrNameTooLong = errors.New("vfs: name too long")
	ErrPathTooLong = errors.New("vfs: path too long")
	ErrInvalid     = errors.New("vfs: invalid argument")
	ErrBadFD       = errors.New("vfs: bad file descriptor")
	ErrNotEmpty    = errors.New("vfs: directory not empty")
	ErrPerm        = errors.New("vfs: operation not permitted")
)

// InvalidateHook lets the kernel tear down (or write-protect) every task
// mapping of file page (ino, idx) on node before the cache discards or
// downgrades that node's copy. pt may be a remote-node port when the
// downgrade runs inside a DSM service routine, so the table writes are
// charged against the right node's caches.
type InvalidateHook func(pt *hw.Port, ino, idx int64, node mem.NodeID, writeProtectOnly bool)

// Stats are the page-cache counters, per accessing node, plus the
// messaging-class cycles the popcorn protocol spends (always zero in the
// fused regime — that asymmetry is the experiment's shape check).
type Stats struct {
	Hits          [2]int64
	Misses        [2]int64
	Writebacks    [2]int64
	Invalidations [2]int64
	// MetaRPCs counts namespace operations (create/unlink/lookup
	// replication) forwarded between kernels in the popcorn regime.
	MetaRPCs int64
	// Syncs counts fsync calls per calling node — in both regimes, so a
	// persistence workload can prove its flush policy ran even where the
	// fused flush itself is free.
	Syncs [2]int64
	// MsgCycles accumulates, per requesting node, the simulated cycles
	// spent inside coherence and namespace RPCs.
	MsgCycles [2]sim.Cycles
}

// TotalMsgCycles sums the per-node RPC cycles.
func (s Stats) TotalMsgCycles() sim.Cycles { return s.MsgCycles[0] + s.MsgCycles[1] }

// PageCache is the regime-independent cache interface. Frame is the whole
// protocol: it returns the frame backing page idx of ino as reachable from
// pt's node, faulting it in (and running any coherence downgrades) under
// the page's protocol lock. write declares store intent — in the popcorn
// regime it acquires exclusive ownership and marks the page dirty. ten is
// the tenant the fault is charged to (nil = root, never charged): each
// frame the cache allocates on a tenant's behalf counts against its
// CacheFrames budget until the frame is freed, and a charge refused at
// budget fails the fault with a *cap.CapError.
type PageCache interface {
	Regime() Regime
	Frame(pt *hw.Port, ten *cap.Tenant, ino *Inode, idx int64, write bool) (mem.PhysAddr, error)
	// Sync flushes ino's dirty pages (popcorn: writeback messages to the
	// inode's home kernel; fused: a no-op, shared memory is authoritative).
	Sync(pt *hw.Port, ino *Inode) error
	// Drop invalidates and frees every cached page of ino (unlink).
	Drop(pt *hw.Port, ino *Inode) error
	SetInvalidateHook(h InvalidateHook)
}

// pageKey identifies one file page in a cache.
type pageKey struct {
	ino int64
	idx int64
}

// emitPC emits one page-cache trace event: VA carries the byte offset of
// the page in the file, PA the backing frame, Arg the inode number.
func emitPC(tr trace.Tracer, pt *hw.Port, kind trace.Kind, node mem.NodeID, ino, idx int64, pa mem.PhysAddr) {
	if tr == nil {
		return
	}
	tr.Emit(trace.Event{Cycle: int64(pt.T.Now()), Kind: kind,
		Node: int8(node), Core: int16(pt.Core), Tid: int32(pt.T.ID),
		VA: uint64(idx) * mem.PageSize, PA: uint64(pa), Arg: ino})
}

// lockPage spins (in simulated time) until the page's protocol lock is
// free, then takes it. The simulation engine serializes execution on one
// token, so the flag itself needs no host synchronization; the spin makes
// concurrent faults on one page serialize in simulated time.
func lockPage(pt *hw.Port, busy map[pageKey]bool, k pageKey) {
	for busy[k] {
		pt.T.Advance(busySpinCost)
		pt.T.YieldPoint()
	}
	busy[k] = true
}

func unlockPage(busy map[pageKey]bool, k pageKey) { delete(busy, k) }

// LockAppend serializes append-mode writers on one inode. A write syscall
// reads end-of-file and then writes there; in the popcorn regime the write
// can block mid-transfer on page RPCs, opening a window where a second
// appender reads the same end-of-file and the records tear. Same idiom as
// lockPage: the engine's execution token serializes the flag accesses, the
// spin serializes the appenders in simulated time.
func (ino *Inode) LockAppend(pt *hw.Port) {
	for ino.appendBusy {
		pt.T.Advance(busySpinCost)
		pt.T.YieldPoint()
	}
	ino.appendBusy = true
}

// UnlockAppend releases LockAppend.
func (ino *Inode) UnlockAppend() { ino.appendBusy = false }
