package vfs

import (
	"errors"
	"strings"
	"testing"
)

func TestComponents(t *testing.T) {
	cases := []struct {
		in   string
		want []string
		err  error
	}{
		{"/", nil, nil},
		{"//", nil, nil},
		{"/a/b", []string{"a", "b"}, nil},
		{"a/b", []string{"a", "b"}, nil},
		{"/a//b/", []string{"a", "b"}, nil},
		{"/a/./b", []string{"a", "b"}, nil},
		{"/a/../b", []string{"a", "..", "b"}, nil},
		{".", nil, nil},
		{"..", []string{".."}, nil},
		{"", nil, ErrNotExist},
		{"/" + strings.Repeat("x", NameMax+1), nil, ErrNameTooLong},
		{strings.Repeat("/a", PathMax), nil, ErrPathTooLong},
	}
	for _, c := range cases {
		got, err := Components(c.in)
		if c.err != nil {
			if !errors.Is(err, c.err) {
				t.Errorf("Components(%q) err = %v, want %v", c.in, err, c.err)
			}
			continue
		}
		if err != nil {
			t.Errorf("Components(%q) unexpected error: %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("Components(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Components(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestFDTableReusesLowestSlot(t *testing.T) {
	tab := NewFDTable()
	f := func() *File { return &File{Flags: ORead} }
	fd0, fd1, fd2 := tab.Install(f()), tab.Install(f()), tab.Install(f())
	if fd0 != 0 || fd1 != 1 || fd2 != 2 {
		t.Fatalf("fresh installs got %d,%d,%d, want 0,1,2", fd0, fd1, fd2)
	}
	if err := tab.Close(fd1); err != nil {
		t.Fatal(err)
	}
	if got := tab.Install(f()); got != 1 {
		t.Fatalf("reinstall got fd %d, want the freed slot 1", got)
	}
	if tab.Open() != 3 {
		t.Fatalf("Open() = %d, want 3", tab.Open())
	}
	if _, err := tab.Get(7); !errors.Is(err, ErrBadFD) {
		t.Fatalf("Get(7) err = %v, want ErrBadFD", err)
	}
	if err := tab.Close(fd1); err != nil {
		t.Fatal(err)
	}
	if err := tab.Close(fd1); !errors.Is(err, ErrBadFD) {
		t.Fatalf("double close err = %v, want ErrBadFD", err)
	}
}

func TestRegimeString(t *testing.T) {
	if RegimeFused.String() != "fused" || RegimePopcorn.String() != "popcorn" || RegimeAuto.String() != "auto" {
		t.Fatalf("Regime.String broken: %v %v %v", RegimeFused, RegimePopcorn, RegimeAuto)
	}
}
