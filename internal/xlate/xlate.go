// Package xlate implements Popcorn-compiler-style execution state
// transformation between the two ISAs (§5 "Applications' Compiler and
// Linker"). At compiler-designated migration points, the live program state
// is captured from the source architecture's register file into an
// ISA-neutral common format, and re-materialized into the destination
// architecture's register file, with the destination PC set to the
// equivalent point in the destination binary.
//
// The register files differ in size (16 vs 32) and the compiler's register
// assignment differs per target, so the transformation is table-driven: the
// compiler (internal/minicc) emits a RegMap per target plus per-point PCs.
package xlate

import (
	"fmt"

	"repro/internal/isa"
)

// RegMap maps a virtual (common-format) register to a machine register for
// one target architecture.
type RegMap func(vreg int) int

// CommonState is the ISA-neutral execution state at a migration point: the
// values of the live virtual registers plus the point's identity.
type CommonState struct {
	PointID int
	VRegs   []uint64
}

// Capture reads n virtual registers out of cpu through the map.
func Capture(cpu isa.CPU, n int, rm RegMap) CommonState {
	cs := CommonState{VRegs: make([]uint64, n)}
	for v := 0; v < n; v++ {
		cs.VRegs[v] = cpu.Reg(rm(v))
	}
	return cs
}

// Restore writes the common state into cpu through the map and points the
// CPU at pc (the equivalent migration point in the destination binary).
func Restore(cpu isa.CPU, cs CommonState, rm RegMap, pc uint64) error {
	for v, val := range cs.VRegs {
		r := rm(v)
		if r < 0 || r >= cpu.NumRegs() {
			return fmt.Errorf("xlate: vreg %d maps to invalid %v register %d", v, cpu.Arch(), r)
		}
		cpu.SetReg(r, val)
	}
	cpu.SetPC(pc)
	return nil
}

// Transform moves execution state from src to dst in one call.
func Transform(src, dst isa.CPU, n int, srcMap, dstMap RegMap, dstPC uint64, pointID int) (CommonState, error) {
	cs := Capture(src, n, srcMap)
	cs.PointID = pointID
	if err := Restore(dst, cs, dstMap, dstPC); err != nil {
		return cs, err
	}
	return cs, nil
}
