package xlate

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestCaptureReadsThroughMap(t *testing.T) {
	cpu := isa.NewX86CPU(0, 0)
	cpu.SetReg(5, 111)
	cpu.SetReg(6, 222)
	cs := Capture(cpu, 2, func(v int) int { return 5 + v })
	if cs.VRegs[0] != 111 || cs.VRegs[1] != 222 {
		t.Errorf("captured %v", cs.VRegs)
	}
}

func TestRestoreWritesThroughMapAndSetsPC(t *testing.T) {
	cpu := isa.NewArmCPU(0, 0)
	cs := CommonState{PointID: 3, VRegs: []uint64{7, 8, 9}}
	if err := Restore(cpu, cs, func(v int) int { return 10 + v }, 0x1234); err != nil {
		t.Fatal(err)
	}
	for v, want := range cs.VRegs {
		if got := cpu.Reg(10 + v); got != want {
			t.Errorf("reg %d = %d, want %d", 10+v, got, want)
		}
	}
	if cpu.PC() != 0x1234 {
		t.Errorf("pc = %#x", cpu.PC())
	}
}

func TestRestoreRejectsBadMap(t *testing.T) {
	cpu := isa.NewX86CPU(0, 0)
	if err := Restore(cpu, CommonState{VRegs: []uint64{1}}, func(int) int { return 16 }, 0); err == nil {
		t.Error("register 16 accepted on a 16-register file")
	}
	if err := Restore(cpu, CommonState{VRegs: []uint64{1}}, func(int) int { return -1 }, 0); err == nil {
		t.Error("negative register accepted")
	}
}

func TestTransformProperty(t *testing.T) {
	// Transform from a 16-reg machine to a 32-reg machine and back is the
	// identity on the virtual state regardless of map choice.
	f := func(vals [6]uint64, xBase, aBase uint8) bool {
		xb := int(xBase%10) + 1 // 1..10, +5 regs fits in 16
		ab := int(aBase%25) + 1 // 1..25, +5 regs fits in 32
		xm := func(v int) int { return xb + v }
		am := func(v int) int { return ab + v }
		src := isa.NewX86CPU(0, 0)
		for v, val := range vals {
			src.SetReg(xm(v), val)
		}
		mid := isa.NewArmCPU(0, 0)
		if _, err := Transform(src, mid, len(vals), xm, am, 0x40, 1); err != nil {
			return false
		}
		dst := isa.NewX86CPU(0, 0)
		if _, err := Transform(mid, dst, len(vals), am, xm, 0x80, 1); err != nil {
			return false
		}
		for v, val := range vals {
			if dst.Reg(xm(v)) != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
