// Package stramash is a from-scratch Go reproduction of "Stramash: A
// Fused-Kernel Operating System For Cache-Coherent, Heterogeneous-ISA
// Platforms" (ASPLOS 2025): a deterministic architectural simulation of a
// two-ISA (x86-64 + AArch64) cache-coherent platform, two operating-system
// personalities on top of it — the shared-nothing multiple-kernel baseline
// (Popcorn-style) and the paper's shared-mostly fused-kernel design — and
// the full evaluation harness that regenerates every table and figure of
// the paper.
//
// The package is a facade: it re-exports the stable surface of the
// internal packages so applications can build and drive simulated machines
// without importing internals.
//
// # Quick start
//
//	m, err := stramash.NewMachine(stramash.MachineConfig{
//	    Model: stramash.ModelShared,
//	    OS:    stramash.FusedKernel,
//	})
//	if err != nil { ... }
//	res, err := m.RunSingle("hello", stramash.NodeX86, func(t *stramash.Task) error {
//	    buf, err := t.Proc.Mmap(1<<20, stramash.VMARead|stramash.VMAWrite, "heap")
//	    if err != nil { return err }
//	    if err := t.Store(buf, 8, 42); err != nil { return err }
//	    if err := t.Migrate(stramash.NodeArm); err != nil { return err }
//	    v, err := t.Load(buf, 8) // read on the other ISA, no copies
//	    ...
//	})
package stramash

import (
	"context"
	"io"

	"repro/internal/cap"
	"repro/internal/experiments"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/net"
	"repro/internal/npb"
	"repro/internal/pgtable"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Machine construction.
type (
	// MachineConfig selects the hardware model, OS personality and
	// machine parameters.
	MachineConfig = machine.Config
	// Machine is an assembled two-ISA system.
	Machine = machine.Machine
	// TaskSpec describes one task for Machine.RunTasks.
	TaskSpec = machine.TaskSpec
	// TaskResult reports one finished task.
	TaskResult = machine.Result
	// Task is a simulated thread: the workload-facing API.
	Task = kernel.Task
	// Process is a simulated user process.
	Process = kernel.Process
	// Cycles is simulated time in CPU cycles.
	Cycles = sim.Cycles
	// VirtAddr is a virtual address in a process's address space.
	VirtAddr = pgtable.VirtAddr
	// OSKind selects an operating-system personality.
	OSKind = machine.OSKind
	// MemModel selects a hardware memory configuration.
	MemModel = mem.Model
	// NodeID identifies a processor complex.
	NodeID = mem.NodeID
	// SchedPolicy selects how tasks share the simulated CPUs.
	SchedPolicy = kernel.SchedPolicy
	// ClonedTask is a sibling task created by Task.Clone, joinable with
	// ClonedTask.Join.
	ClonedTask = kernel.ClonedTask
)

// NewMachine builds and boots a simulated machine.
func NewMachine(cfg MachineConfig) (*Machine, error) { return machine.New(cfg) }

// Hardware memory models (Figure 3 of the paper).
const (
	// ModelSeparated: per-node memories, coherent interconnect (NUMA/CXL).
	ModelSeparated = mem.Separated
	// ModelShared: per-node memories plus a CXL 3.0 shared pool.
	ModelShared = mem.Shared
	// ModelFullyShared: one memory, single-chip integration.
	ModelFullyShared = mem.FullyShared
)

// Operating-system personalities.
const (
	// SingleKernel runs the app on one kernel, no migration ("Vanilla").
	SingleKernel = machine.VanillaOS
	// MultiKernelTCP is the shared-nothing baseline over a network path.
	MultiKernelTCP = machine.PopcornTCP
	// MultiKernelSHM is the shared-nothing baseline over shared-memory
	// message rings.
	MultiKernelSHM = machine.PopcornSHM
	// FusedKernel is the paper's contribution: shared-mostly kernels.
	FusedKernel = machine.StramashOS
)

// Scheduler policies for MachineConfig.Sched.
const (
	// SchedShared lets every runnable task progress concurrently; the
	// per-core CPUs are pure bookkeeping and cost nothing (the default,
	// preserving single-task timing exactly).
	SchedShared = kernel.SchedShared
	// SchedTimeSlice enforces one task per CPU with per-core FIFO run
	// queues and deterministic round-robin preemption at a
	// retired-instruction quantum (MachineConfig.SchedQuantum).
	SchedTimeSlice = kernel.SchedTimeSlice
)

// Nodes of the two-ISA platform.
const (
	// NodeX86 is the x86-64 processor complex.
	NodeX86 = mem.NodeX86
	// NodeArm is the AArch64 processor complex.
	NodeArm = mem.NodeArm
)

// VMA permission flags for Process.Mmap.
const (
	// VMARead marks an area readable.
	VMARead = kernel.VMARead
	// VMAWrite marks an area writable.
	VMAWrite = kernel.VMAWrite
	// VMAExec marks an area executable.
	VMAExec = kernel.VMAExec
)

// File system. Every machine boots with one system-wide in-memory file
// system whose data pages live in simulated physical memory; Task methods
// (OpenFile, ReadFileAt, WriteFileAt, MmapFile, ...) are the syscall
// surface. MachineConfig.FileCache picks the page-cache coherence regime.
type (
	// FileCacheRegime selects how the two kernels keep file pages coherent.
	FileCacheRegime = vfs.Regime
	// OpenFlags are Task.OpenFile mode bits.
	OpenFlags = vfs.OpenFlags
	// FileStats are the page-cache counters (Machine.FileStats).
	FileStats = vfs.Stats
)

// Page-cache coherence regimes for MachineConfig.FileCache.
const (
	// FileCacheAuto follows the OS personality: fused kernels share one
	// page cache, multiple-kernel baselines replicate per kernel.
	FileCacheAuto = vfs.RegimeAuto
	// FileCacheFused is one shared page cache reached by both ISAs through
	// cache-coherent loads and stores.
	FileCacheFused = vfs.RegimeFused
	// FileCachePopcorn keeps a per-kernel page cache with DSM-style
	// invalidate/writeback messages between the kernels.
	FileCachePopcorn = vfs.RegimePopcorn
)

// Open flags for Task.OpenFile.
const (
	// ORead opens for reading.
	ORead = vfs.ORead
	// OWrite opens for writing.
	OWrite = vfs.OWrite
	// ORDWR opens for both.
	ORDWR = vfs.ORDWR
	// OCreate creates the file if absent.
	OCreate = vfs.OCreate
	// OTrunc truncates on open.
	OTrunc = vfs.OTrunc
	// OAppend positions sequential writes at the end.
	OAppend = vfs.OAppend
)

// Multi-tenancy. MachineConfig.Tenants boots the machine with a capability
// namespace: every task carries its tenant (TaskSpec.Tenant), every
// privileged syscall is checked against the tenant's grants deny-by-default,
// and resource budgets bound anonymous frames, page-cache frames, and the
// scheduler share. Machines without tenants keep the root fast path — the
// gates cost one nil check and zero simulated cycles.
type (
	// TenantSpec declares one tenant in MachineConfig.Tenants: name,
	// budget, and textual capability grants ("file:/prefix", "sock",
	// "net", "spawn", "futex", "vma").
	TenantSpec = machine.TenantSpec
	// TenantBudget is a tenant's resource envelope; zero fields mean
	// unlimited.
	TenantBudget = cap.Budget
	// Tenant is one isolation domain (Machine.Tenant).
	Tenant = cap.Tenant
	// TenantStats are a tenant's kernel counters: caps checked, denials,
	// revocations, frames/cache charged, quota hits.
	TenantStats = cap.Stats
	// CapError is the typed error every capability gate returns: who was
	// refused, on which capability, and why.
	CapError = cap.CapError
	// CapID names one capability table entry (Task.RevokeCap).
	CapID = cap.CapID
)

// CapError reasons.
const (
	// CapDenied: the tenant holds no capability covering the access.
	CapDenied = cap.Denied
	// CapRevoked: the capability (or an ancestor) was revoked.
	CapRevoked = cap.Revoked
	// CapBudgetExhausted: a resource charge would exceed the budget.
	CapBudgetExhausted = cap.BudgetExhausted
)

// Capability kinds, for looking entries up in the table (for example to
// pick a revocation target with Machine.Ctx.Caps.Table.Find).
const (
	// CapFileKind guards path and descriptor access.
	CapFileKind = cap.File
	// CapSockKind guards socket syscalls.
	CapSockKind = cap.Sock
	// CapVMAKind guards anonymous mmap.
	CapVMAKind = cap.VMA
	// CapFutexKind guards futex wait/wake.
	CapFutexKind = cap.Futex
	// CapSpawnKind guards clone.
	CapSpawnKind = cap.Spawn
	// CapNetKind guards claiming the machine's NIC.
	CapNetKind = cap.Net
)

// Clusters. Several machines join one deterministically-arbitrated switch
// and one clock universe; kernel socket syscalls (Task.SocketListen,
// SocketConnect, SendSock, RecvSock, ...) carry byte streams between them
// through simulated NIC descriptor rings and a TCP-lite transport.
type (
	// Cluster is a set of machines joined by one switch fabric.
	Cluster = machine.Cluster
	// ClusterTask places one TaskSpec on one cluster machine.
	ClusterTask = machine.ClusterTask
	// FabricConfig parameterizes the cluster switch (latency, bandwidth,
	// retransmit backoff).
	FabricConfig = net.FabricConfig
	// NICConfig sizes a machine's NIC descriptor rings
	// (MachineConfig.NIC).
	NICConfig = net.NICConfig
	// NICStats are one machine's device counters (Cluster.NICStats).
	NICStats = net.NICStats
	// NetAddr addresses a socket endpoint: (machine index, port).
	NetAddr = net.Addr
)

// NewCluster builds and boots the given machines on one shared simulation
// engine, attaching one NIC per machine to a fresh switch fabric. Machine
// i of the returned cluster is addressable as NetAddr{Mach: i}.
func NewCluster(cfgs []MachineConfig, fcfg FabricConfig) (*Cluster, error) {
	return machine.NewCluster(cfgs, fcfg)
}

// DefaultFabricConfig returns the evaluation switch parameters.
func DefaultFabricConfig() FabricConfig { return net.DefaultFabricConfig() }

// Workloads.
type (
	// Workload is a runnable benchmark (the NPB kernels).
	Workload = npb.Workload
	// WorkloadClass scales a workload.
	WorkloadClass = npb.Class
)

// Workload classes.
const (
	// ClassTiny is unit-test sized.
	ClassTiny = npb.ClassT
	// ClassSmall is the evaluation size.
	ClassSmall = npb.ClassS
	// ClassWide is the larger cache-sensitivity size.
	ClassWide = npb.ClassW
)

// NewWorkload returns one of the NPB benchmarks: "IS", "CG", "MG", "FT".
func NewWorkload(name string, class WorkloadClass) (Workload, error) {
	return npb.New(name, class)
}

// WorkloadNames lists the available benchmarks.
func WorkloadNames() []string { return npb.Names() }

// Experiments.
type (
	// Experiment names one table/figure runner.
	Experiment = experiments.Spec
	// ExperimentResult is a finished experiment.
	ExperimentResult = experiments.Result
	// ExperimentScale selects quick or full workloads.
	ExperimentScale = experiments.Scale
	// ExperimentOutcome records one experiment's run on the pool.
	ExperimentOutcome = experiments.Outcome
	// ExperimentSummary aggregates a whole-suite run (specs, deviations,
	// wall/cpu time).
	ExperimentSummary = experiments.Summary
	// ExperimentPoolOptions bounds parallelism and per-spec timeouts.
	ExperimentPoolOptions = experiments.PoolOptions
)

// Experiment scales.
const (
	// ScaleQuick runs CI-sized workloads.
	ScaleQuick = experiments.Quick
	// ScaleFull runs evaluation-sized workloads.
	ScaleFull = experiments.Full
)

// Experiments returns every table/figure runner in paper order.
func Experiments() []Experiment { return experiments.All() }

// FindExperiment looks an experiment up by id (e.g. "fig9", "table3").
func FindExperiment(id string) (Experiment, bool) { return experiments.Find(id) }

// RunAll regenerates every table and figure at the given scale on a
// bounded worker pool (parallelism <= 0 means GOMAXPROCS), writing the
// canonical report to w. Each experiment runs against its own isolated
// machines, so the report is byte-identical at any parallelism; cancelling
// ctx fails experiments that have not started yet. The summary carries the
// deviation count and wall/cpu times; err is the first experiment failure.
func RunAll(ctx context.Context, w io.Writer, scale ExperimentScale, parallelism int) (ExperimentSummary, error) {
	s, _, err := experiments.RunAllParallel(ctx, w, scale, ExperimentPoolOptions{Parallelism: parallelism})
	return s, err
}

// RunExperiments runs an arbitrary spec subset on the pool and returns the
// outcomes in spec order.
func RunExperiments(ctx context.Context, specs []Experiment, scale ExperimentScale, opts ExperimentPoolOptions) []ExperimentOutcome {
	return experiments.RunPool(ctx, specs, scale, opts)
}
