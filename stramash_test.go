package stramash_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	stramash "repro"
)

func TestFacadeQuickstartScenario(t *testing.T) {
	m, err := stramash.NewMachine(stramash.MachineConfig{
		Model: stramash.ModelShared,
		OS:    stramash.FusedKernel,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunSingle("facade", stramash.NodeX86, func(task *stramash.Task) error {
		heap, err := task.Proc.Mmap(64<<10, stramash.VMARead|stramash.VMAWrite, "heap")
		if err != nil {
			return err
		}
		if err := task.Store(heap, 8, 0xC0FFEE); err != nil {
			return err
		}
		if err := task.Migrate(stramash.NodeArm); err != nil {
			return err
		}
		v, err := task.Load(heap, 8)
		if err != nil {
			return err
		}
		if v != 0xC0FFEE {
			t.Errorf("cross-ISA read = %#x", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed() <= 0 {
		t.Error("no simulated time elapsed")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	names := stramash.WorkloadNames()
	if len(names) != 4 {
		t.Fatalf("workloads = %v", names)
	}
	w, err := stramash.NewWorkload("CG", stramash.ClassTiny)
	if err != nil {
		t.Fatal(err)
	}
	m, err := stramash.NewMachine(stramash.MachineConfig{
		Model: stramash.ModelFullyShared,
		OS:    stramash.SingleKernel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunSingle("cg", stramash.NodeX86, func(task *stramash.Task) error {
		return w.Run(task, false)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(stramash.Experiments()) != 16 {
		t.Errorf("experiment count = %d", len(stramash.Experiments()))
	}
	spec, ok := stramash.FindExperiment("table2")
	if !ok {
		t.Fatal("table2 missing")
	}
	res, err := spec.Run(stramash.ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ShapeErrors()) != 0 {
		t.Errorf("table2 shape errors: %v", res.ShapeErrors())
	}
}

func TestFacadeRunExperimentsParallel(t *testing.T) {
	// A cheap subset through the public pool API, sequential vs parallel:
	// outcomes must land in spec order and render identically.
	var specs []stramash.Experiment
	for _, id := range []string{"table2", "fig5-6-small", "ablation-ipi"} {
		s, ok := stramash.FindExperiment(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		specs = append(specs, s)
	}
	seq := stramash.RunExperiments(context.Background(), specs, stramash.ScaleQuick,
		stramash.ExperimentPoolOptions{Parallelism: 1})
	par := stramash.RunExperiments(context.Background(), specs, stramash.ScaleQuick,
		stramash.ExperimentPoolOptions{Parallelism: len(specs)})
	for i := range specs {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("%s: seq err=%v par err=%v", specs[i].ID, seq[i].Err, par[i].Err)
		}
		if seq[i].Spec.ID != specs[i].ID || par[i].Spec.ID != specs[i].ID {
			t.Errorf("outcome %d out of order: seq=%s par=%s", i, seq[i].Spec.ID, par[i].Spec.ID)
		}
		if seq[i].Result.Render() != par[i].Result.Render() {
			t.Errorf("%s renders differently under parallelism", specs[i].ID)
		}
	}
}

func TestFacadeRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	summary, err := stramash.RunAll(context.Background(), &buf, stramash.ScaleQuick, 0)
	if err != nil {
		t.Fatal(err)
	}
	if summary.Specs != 16 || summary.Errors != 0 {
		t.Errorf("summary = %+v", summary)
	}
	if summary.Wall <= 0 || summary.CPU <= 0 {
		t.Errorf("summary times not recorded: %+v", summary)
	}
	out := buf.String()
	if strings.Count(out, "== ") != 16 {
		t.Errorf("report holds %d experiment headers, want 16", strings.Count(out, "== "))
	}
}
