package stramash_test

import (
	"testing"

	stramash "repro"
)

func TestFacadeQuickstartScenario(t *testing.T) {
	m, err := stramash.NewMachine(stramash.MachineConfig{
		Model: stramash.ModelShared,
		OS:    stramash.FusedKernel,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunSingle("facade", stramash.NodeX86, func(task *stramash.Task) error {
		heap, err := task.Proc.Mmap(64<<10, stramash.VMARead|stramash.VMAWrite, "heap")
		if err != nil {
			return err
		}
		if err := task.Store(heap, 8, 0xC0FFEE); err != nil {
			return err
		}
		if err := task.Migrate(stramash.NodeArm); err != nil {
			return err
		}
		v, err := task.Load(heap, 8)
		if err != nil {
			return err
		}
		if v != 0xC0FFEE {
			t.Errorf("cross-ISA read = %#x", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed() <= 0 {
		t.Error("no simulated time elapsed")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	names := stramash.WorkloadNames()
	if len(names) != 4 {
		t.Fatalf("workloads = %v", names)
	}
	w, err := stramash.NewWorkload("CG", stramash.ClassTiny)
	if err != nil {
		t.Fatal(err)
	}
	m, err := stramash.NewMachine(stramash.MachineConfig{
		Model: stramash.ModelFullyShared,
		OS:    stramash.SingleKernel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunSingle("cg", stramash.NodeX86, func(task *stramash.Task) error {
		return w.Run(task, false)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(stramash.Experiments()) != 16 {
		t.Errorf("experiment count = %d", len(stramash.Experiments()))
	}
	spec, ok := stramash.FindExperiment("table2")
	if !ok {
		t.Fatal("table2 missing")
	}
	res, err := spec.Run(stramash.ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ShapeErrors()) != 0 {
		t.Errorf("table2 shape errors: %v", res.ShapeErrors())
	}
}
